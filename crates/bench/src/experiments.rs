//! One function per paper table/figure, plus the DESIGN.md ablations.
//!
//! Every function builds fresh machines (full determinism), runs the
//! workload, and renders a [`Table`] shaped like the paper's artifact.
//! The `quick` flag trades precision for speed; the dedicated binaries
//! run full scale, the `figures` bench runs quick.

use bpfstor_core::{
    Btree, Chase, CommitPolicy, DispatchMode, FabricConfig, PushdownSession, ReapMode, TenantGroup,
    TenantId, TenantLimits, YcsbMix,
};
use bpfstor_device::{DeviceClass, DeviceProfile, SECTOR_SIZE};
use bpfstor_fs::{ExtFs, ExtentEvent};
use bpfstor_kernel::{ChainStatus, Machine, MachineConfig, RunReport};
use bpfstor_lsm::{LsmConfig, LsmTree};
use bpfstor_sim::{Nanos, SimRng, MILLISECOND, SECOND};
use bpfstor_workload::{KeyDist, Op, OpMix, YcsbGen};

use crate::drivers::{ChaseFallbackDriver, RandomReadDriver};
use crate::report::{iops, ratio, us, Table};

/// Run-scale knob: `quick` for the aggregated `figures` bench, full for
/// the standalone binaries.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Reduced durations/counts.
    pub quick: bool,
}

impl Scale {
    /// Simulated duration for throughput sweeps.
    fn sweep_duration(&self) -> Nanos {
        if self.quick {
            12 * MILLISECOND
        } else {
            60 * MILLISECOND
        }
    }

    /// Random reads for latency measurements.
    fn read_count(&self, slow_device: bool) -> u64 {
        match (self.quick, slow_device) {
            (true, true) => 100,
            (true, false) => 1_000,
            (false, true) => 500,
            (false, false) => 10_000,
        }
    }
}

const HUGE: Nanos = u64::MAX / 4;

fn machine_with_file(profile: DeviceProfile, nblocks: u64, seed: u64) -> (Machine, u32) {
    let cfg = MachineConfig {
        profile,
        seed,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg);
    let mut rng = SimRng::seed(seed ^ 0xF11E);
    let mut data = vec![0u8; (nblocks as usize) * SECTOR_SIZE];
    rng.fill_bytes_vec(&mut data);
    m.create_file("data.bin", &data).expect("create");
    let fd = m.open("data.bin", true).expect("open");
    (m, fd)
}

trait FillExt {
    fn fill_bytes_vec(&mut self, data: &mut [u8]);
}

impl FillExt for SimRng {
    fn fill_bytes_vec(&mut self, data: &mut [u8]) {
        use rand::RngCore;
        self.fill_bytes(data);
    }
}

// --- Figure 1 ---------------------------------------------------------------

/// Figure 1: share of 512 B random-read latency attributable to software
/// vs the device, across four device generations.
pub fn fig1(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 1 — kernel latency overhead, 512B random reads",
        &[
            "device",
            "device us",
            "software us",
            "hardware %",
            "software %",
        ],
    );
    for class in DeviceClass::ALL {
        let profile = DeviceProfile::for_class(class);
        let slow = matches!(class, DeviceClass::Hdd);
        let (mut m, fd) = machine_with_file(profile, 2048, 0xF161 ^ class as u64);
        let mut d = RandomReadDriver::new(fd, 2048, scale.read_count(slow));
        let report = m.run_closed_loop(1, HUGE, &mut d);
        let ios = report.trace.ios.max(1) as f64;
        let dev = report.trace.device as f64 / ios;
        // The paper measures the read() path: exclude application time.
        let sw = (report.trace.crossing
            + report.trace.syscall
            + report.trace.fs
            + report.trace.bio
            + report.trace.drv) as f64
            / ios;
        let total = dev + sw;
        t.row(vec![
            DeviceClass::label(class).to_string(),
            us(dev),
            us(sw),
            format!("{:.1}", dev / total * 100.0),
            format!("{:.1}", sw / total * 100.0),
        ]);
    }
    t.note("paper: software is negligible on HDD and ~half of latency on NVM-2");
    t
}

// --- Table 1 ----------------------------------------------------------------

/// Table 1: average latency breakdown of a 512 B random `read()` on the
/// second-generation Optane device.
pub fn table1(scale: Scale) -> Table {
    let (mut m, fd) = machine_with_file(DeviceProfile::optane_gen2_p5800x(), 4096, 0x7AB1E1);
    let mut d = RandomReadDriver::new(fd, 4096, scale.read_count(false));
    let report = m.run_closed_loop(1, HUGE, &mut d);
    let ios = report.trace.ios.max(1) as f64;
    let rows = [
        ("kernel crossing", report.trace.crossing, 351u64),
        ("read syscall", report.trace.syscall, 199),
        ("ext4", report.trace.fs, 2006),
        ("bio", report.trace.bio, 379),
        ("NVMe driver", report.trace.drv, 113),
        ("storage device", report.trace.device, 3224),
    ];
    let total: f64 = rows.iter().map(|(_, v, _)| *v as f64 / ios).sum();
    let mut t = Table::new(
        "Table 1 — latency breakdown, 512B random read(), NVM-2",
        &["layer", "measured ns", "share %", "paper ns"],
    );
    for (name, total_ns, paper) in rows {
        let per_io = total_ns as f64 / ios;
        t.row(vec![
            name.to_string(),
            format!("{per_io:.0}"),
            format!("{:.1}", per_io / total * 100.0),
            paper.to_string(),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        format!("{total:.0}"),
        "100.0".to_string(),
        "6272".to_string(),
    ]);
    t.note("software layers are configured from Table 1; device time is sampled");
    t
}

// --- Figure 3 sweeps ----------------------------------------------------------

fn lookup_run(
    depth: u32,
    mode: DispatchMode,
    threads: usize,
    duration: Nanos,
    seed: u64,
) -> RunReport {
    let mut session = PushdownSession::builder(Btree::depth(depth))
        .dispatch(mode)
        .seed(seed)
        .build()
        .expect("session builds");
    let (report, stats) = session.run_closed_loop(threads, duration);
    assert_eq!(stats.mismatches, 0, "offloaded lookups must be correct");
    report
}

/// Figures 3a/3b: B-tree lookup throughput improvement over the
/// user-space baseline, sweeping depth × thread count.
pub fn fig3_throughput(scale: Scale, mode: DispatchMode) -> Table {
    let threads = [1usize, 2, 4, 6, 12];
    let title = match mode {
        DispatchMode::SyscallHook => {
            "Figure 3a — IOPS improvement, syscall dispatch hook (read syscall)"
        }
        _ => "Figure 3b — IOPS improvement, NVMe driver hook (read syscall)",
    };
    let mut headers = vec!["depth".to_string()];
    headers.extend(threads.iter().map(|t| format!("t={t}")));
    let mut t = Table {
        title: title.to_string(),
        headers,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    let duration = scale.sweep_duration();
    for depth in 1..=10u32 {
        let mut cells = vec![depth.to_string()];
        for &nthreads in &threads {
            let base = lookup_run(depth, DispatchMode::User, nthreads, duration, 77);
            let hook = lookup_run(depth, mode, nthreads, duration, 77);
            cells.push(ratio(hook.chains_per_sec / base.chains_per_sec));
        }
        t.row(cells);
    }
    match mode {
        DispatchMode::SyscallHook => {
            t.note("paper: modest gains, max ~1.25x (only boundary crossings saved)")
        }
        _ => t.note("paper: up to ~2.5x, growing with depth, largest once CPU saturates"),
    }
    t
}

/// Figure 3c: single-threaded lookup latency by dispatch path.
pub fn fig3c(scale: Scale) -> Table {
    let mut t = Table::new(
        "Figure 3c — single-thread lookup latency (us) by dispatch path",
        &[
            "depth",
            "user space",
            "syscall hook",
            "NVMe driver hook",
            "driver cut %",
        ],
    );
    let duration = if scale.quick {
        4 * MILLISECOND
    } else {
        20 * MILLISECOND
    };
    for depth in 1..=10u32 {
        let user = lookup_run(depth, DispatchMode::User, 1, duration, 33).mean_latency();
        let sys = lookup_run(depth, DispatchMode::SyscallHook, 1, duration, 33).mean_latency();
        let drv = lookup_run(depth, DispatchMode::DriverHook, 1, duration, 33).mean_latency();
        t.row(vec![
            depth.to_string(),
            us(user),
            us(sys),
            us(drv),
            format!("{:.0}", (1.0 - drv / user) * 100.0),
        ]);
    }
    t.note("paper: driver hook cuts latency by up to ~49% at depth 10");
    t
}

/// Figure 3d: single-threaded io_uring lookups, driver hook vs an
/// unmodified io_uring baseline, sweeping batch size.
pub fn fig3d(scale: Scale) -> Table {
    let batches = [1u32, 2, 4, 8];
    let mut headers = vec!["depth".to_string()];
    headers.extend(batches.iter().map(|b| format!("batch={b}")));
    let mut t = Table {
        title: "Figure 3d — io_uring speedup, NVMe driver hook vs io_uring baseline".to_string(),
        headers,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    let duration = scale.sweep_duration();
    for depth in 1..=10u32 {
        let mut cells = vec![depth.to_string()];
        for &batch in &batches {
            let uring_run = |mode: DispatchMode| {
                let mut session = PushdownSession::builder(Btree::depth(depth))
                    .dispatch(mode)
                    .seed(55)
                    .build()
                    .expect("session");
                session.run_uring(1, batch, duration).0
            };
            let base = uring_run(DispatchMode::User);
            let hook = uring_run(DispatchMode::DriverHook);
            cells.push(ratio(hook.chains_per_sec / base.chains_per_sec));
        }
        t.row(cells);
    }
    t.note("paper: speedup grows with batch size; >2.5x at deep trees, 1.3-1.5x at depth 3");
    t
}

// --- Queue-accuracy sweep -------------------------------------------------------

/// Queue-depth × interrupt-coalescing sweep: with 32 SQEs in flight on
/// one queue pair (io_uring, Figure 3d's setup), the NVMe ring depth is
/// the effective device parallelism, and the coalescing knobs trade
/// completion latency against per-CQE interrupt cost. IOPS must vary
/// monotonically along both axes in every dispatch mode.
pub fn queue_sweep(scale: Scale) -> Table {
    queue_sweep_with(scale, None)
}

/// [`queue_sweep`] with an explicit seed override (`None` keeps the
/// canonical seed the CSVs were calibrated on).
pub fn queue_sweep_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(2024);
    let duration = if scale.quick {
        4 * MILLISECOND
    } else {
        20 * MILLISECOND
    };
    let mut t = Table::new(
        "Queue sweep — SQ depth and IRQ coalescing vs IOPS (uring batch 32, depth-4 B-tree)",
        &[
            "mode",
            "knob",
            "IOPS",
            "mean us",
            "irqs",
            "doorbells",
            "rejected",
        ],
    );
    let mut run =
        |mode: DispatchMode, qd: usize, coalesce_us: u64, irq_depth: u32, label: String| -> f64 {
            let mut session = PushdownSession::builder(Btree::depth(4))
                .dispatch(mode)
                .queue_depth(qd)
                .irq_coalescing(coalesce_us, irq_depth)
                .seed(seed)
                .build()
                .expect("session");
            let (report, stats) = session.run_uring(1, 32, duration);
            assert_eq!(stats.mismatches, 0, "offloaded lookups must be correct");
            t.row(vec![
                mode.label().to_string(),
                label,
                iops(report.iops),
                us(report.mean_latency()),
                report.device.irqs.to_string(),
                report.device.doorbells.to_string(),
                report.device.rejected.to_string(),
            ]);
            report.iops
        };
    for mode in DispatchMode::ALL {
        // Axis 1: ring depth, interrupts uncoalesced.
        let mut prev = 0.0;
        for qd in [2usize, 8, 64] {
            let got = run(mode, qd, 0, 1, format!("qd={qd}"));
            assert!(
                got >= prev,
                "{}: IOPS must grow with queue depth (qd={qd}: {got:.0} after {prev:.0})",
                mode.label()
            );
            prev = got;
        }
        // Axis 2: coalescing depth at full ring, 8us time budget. The
        // depth-1 point is the qd=64 run above — a depth-1 threshold
        // fires on the first pending CQE regardless of the budget — so
        // it seeds the monotonicity chain instead of being re-run.
        for irq_depth in [4u32, 16] {
            let got = run(mode, 64, 8, irq_depth, format!("irq={irq_depth}"));
            assert!(
                got <= prev * 1.001,
                "{}: deferring interrupts cannot raise closed-loop IOPS \
                 (irq={irq_depth}: {got:.0} after {prev:.0})",
                mode.label()
            );
            prev = got;
        }
    }
    t.note("queue depth gates device parallelism: IOPS grows monotonically with it");
    t.note("coalescing trades completion latency for interrupt amortization (the qd=64 row is the irq=1 point)");
    t
}

/// Completion-reaping sweep: the three reap modes across light-to-deep
/// uring batches on the depth-4 B-tree. Exercises the crossover the
/// reaper exists to navigate — polling wins IOPS once coalesced
/// interrupts start deferring tag turnover at depth, interrupts win
/// CPU-per-IO when the queue is nearly empty and a poll loop would spin
/// on an idle CQ, and the hybrid scheduler must land within 10% of the
/// better fixed mode at every swept point.
pub fn reap_sweep(scale: Scale) -> Table {
    reap_sweep_with(scale, None)
}

/// [`reap_sweep`] with an explicit seed override.
pub fn reap_sweep_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(2024);
    let duration = if scale.quick {
        4 * MILLISECOND
    } else {
        20 * MILLISECOND
    };
    let mut t = Table::new(
        "Reap sweep — polled vs coalesced-interrupt vs hybrid (DriverHook, depth-4 B-tree)",
        &[
            "reap mode",
            "batch",
            "IOPS",
            "mean us",
            "cpu ns/IO",
            "poll share",
            "irqs",
            "polls",
            "switches",
        ],
    );
    #[derive(Clone, Copy)]
    struct Point {
        iops: f64,
        cpu_per_io: f64,
        switches: u64,
    }
    let mut run = |label: &str, mode: ReapMode, batch: u32| -> Point {
        let mut builder = PushdownSession::builder(Btree::depth(4))
            .dispatch(DispatchMode::DriverHook)
            .seed(seed);
        // The fixed-interrupt arm models a conventionally tuned NIC-style
        // moderation profile (8us budget, 8-deep threshold); the other
        // modes bring their own reap policy.
        if mode == ReapMode::Interrupt {
            builder = builder.irq_coalescing(8, 8);
        }
        let mut session = builder.reap_mode(mode).build().expect("session");
        let (report, stats) = session.run_uring(1, batch, duration);
        assert_eq!(stats.mismatches, 0, "offloaded lookups must be correct");
        assert_eq!(stats.errors, 0);
        // Aggregate CPU across the 6 simulated cores, charged per IO.
        let cpu_per_io = report.cpu_util * report.sim_time as f64 * 6.0 / report.ios.max(1) as f64;
        t.row(vec![
            label.to_string(),
            batch.to_string(),
            iops(report.iops),
            us(report.mean_latency()),
            format!("{cpu_per_io:.0}"),
            format!("{:.0}%", report.reaper.cpu_split().0 * 100.0),
            report.trace.irqs.to_string(),
            report.trace.polls.to_string(),
            report.reaper.mode_transitions.to_string(),
        ]);
        Point {
            iops: report.iops,
            cpu_per_io,
            switches: report.reaper.mode_transitions,
        }
    };
    let batches = [1u32, 4, 32];
    let mut fixed: Vec<(Point, Point)> = Vec::new();
    for &b in &batches {
        let irq = run("interrupt", ReapMode::Interrupt, b);
        let adaptive = run("adaptive-irq", ReapMode::AdaptiveIrq(Default::default()), b);
        let polled = run("polled", ReapMode::Polled(Default::default()), b);
        assert_eq!(irq.switches + adaptive.switches + polled.switches, 0);
        fixed.push((irq, polled));
    }
    let mut hybrid = Vec::new();
    for &b in &batches {
        hybrid.push(run("hybrid", ReapMode::Hybrid(Default::default()), b));
    }
    // Crossover, per the paper's polling-vs-interrupt trade: polling
    // must win throughput at the deepest batch, interrupts must win
    // CPU-per-IO at the lightest.
    let (irq_deep, polled_deep) = fixed[batches.len() - 1];
    assert!(
        polled_deep.iops >= irq_deep.iops,
        "polling must out-reap coalesced interrupts at depth: {:.0} vs {:.0}",
        polled_deep.iops,
        irq_deep.iops
    );
    let (irq_light, polled_light) = fixed[0];
    assert!(
        irq_light.cpu_per_io <= polled_light.cpu_per_io,
        "interrupts must burn less CPU per IO on a near-empty queue: {:.0} vs {:.0}",
        irq_light.cpu_per_io,
        polled_light.cpu_per_io
    );
    // The load-adaptive scheduler tracks the better fixed mode everywhere.
    for (i, &b) in batches.iter().enumerate() {
        let (irq, polled) = fixed[i];
        let best = irq.iops.max(polled.iops);
        assert!(
            hybrid[i].iops >= 0.9 * best,
            "hybrid must stay within 10% of the best fixed mode at batch {b}: {:.0} vs {:.0}",
            hybrid[i].iops,
            best
        );
    }
    assert!(
        hybrid.last().expect("points").switches >= 1,
        "the deepest batch must trip the hybrid high watermark"
    );
    t.note("interrupt rows use an 8us/8-deep moderation profile; polled reaps every 250ns");
    t.note("hybrid starts on interrupts and switches per-qp when the backlog window crosses its watermarks");
    t
}

// --- Write-mix sweep -------------------------------------------------------------

/// Queue-depth sweep under the paper's 40r/40u/20i TokuDB mix: writes
/// ride the same per-queue SQ/CQ rings as reads (journaled data writes
/// plus fsync flush barriers), so the ring depth gates *write*
/// throughput exactly as it gates reads. Write IOPS must be monotone
/// non-decreasing in queue depth in every dispatch mode, and the
/// write-heavy mix must cost readers tail latency versus read-only at
/// the same depth.
pub fn write_mix(scale: Scale) -> Table {
    write_mix_with(scale, None)
}

/// [`write_mix`] with an explicit seed override.
pub fn write_mix_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(0x3117);
    let duration = if scale.quick {
        4 * MILLISECOND
    } else {
        20 * MILLISECOND
    };
    let entries: Vec<(u64, Vec<u8>)> = (0..600u64)
        .map(|i| {
            let mut v = vec![0u8; 48];
            v[..8].copy_from_slice(&(i * 31).to_le_bytes());
            (i * 3, v)
        })
        .collect();
    let mut t = Table::new(
        "Write mix — SQ depth vs write IOPS (YCSB 40r/40u/20i, uring batch 16)",
        &[
            "mode",
            "qd",
            "write IOPS",
            "read IOPS",
            "p99 read us",
            "flushes",
            "rejected",
        ],
    );
    let mut run = |mode: DispatchMode, qd: usize| -> (f64, f64) {
        let mut session =
            PushdownSession::builder(YcsbMix::new(entries.clone(), OpMix::paper_tokudb(), seed))
                .dispatch(mode)
                .queue_depth(qd)
                .seed(seed)
                .build()
                .expect("session");
        let (report, stats) = session.run_uring(2, 16, duration);
        assert_eq!(
            stats.mismatches, 0,
            "reads stay correct under the write storm"
        );
        assert_eq!(stats.errors, 0);
        let secs = report.sim_time as f64 / 1e9;
        let write_iops = report.device.writes as f64 / secs;
        let read_iops = report.device.reads as f64 / secs;
        t.row(vec![
            mode.label().to_string(),
            qd.to_string(),
            iops(write_iops),
            iops(read_iops),
            us(report.read_latency.quantile(0.99) as f64),
            report.device.flushes.to_string(),
            report.device.rejected.to_string(),
        ]);
        (write_iops, report.read_latency.quantile(0.99) as f64)
    };
    for mode in DispatchMode::ALL {
        let mut prev = 0.0;
        for qd in [2usize, 8, 64] {
            let (got, _) = run(mode, qd);
            assert!(
                got >= prev,
                "{}: write IOPS must be monotone in queue depth (qd={qd}: {got:.0} after {prev:.0})",
                mode.label()
            );
            prev = got;
        }
    }
    t.note("write commands contend with reads for SQ slots; depth gates both");
    t.note("every fsync is an ordered flush barrier committing the journal");
    t
}

// --- Group-commit study ----------------------------------------------------------

/// Group-commit study: write throughput versus concurrent fsyncing
/// writers under the three [`CommitPolicy`] variants. Per-fsync commit
/// pays one flush barrier per writer per write, so IOPS flatline as
/// writers are added; group commit seals one shared transaction whose
/// single barrier commits every joined handle, and writeback adds a
/// background flush timer on top. The function asserts the amortization
/// headline: at 8+ writers the grouped policies deliver at least 1.5×
/// the per-fsync write IOPS with fewer than one barrier per fsync.
pub fn group_commit_study(scale: Scale) -> Table {
    group_commit_study_with(scale, None)
}

/// [`group_commit_study`] with an explicit seed override.
pub fn group_commit_study_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(0x6C01);
    let duration = if scale.quick {
        4 * MILLISECOND
    } else {
        16 * MILLISECOND
    };
    let writer_counts: &[usize] = if scale.quick {
        &[1, 8, 32]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let entries: Vec<(u64, Vec<u8>)> = (0..64u64)
        .map(|i| {
            let mut v = vec![0u8; 48];
            v[..8].copy_from_slice(&(i * 31).to_le_bytes());
            (i * 3, v)
        })
        .collect();
    // 100% updates, fsync on every write: the pure flush-barrier storm.
    let storm = OpMix {
        read: 0,
        update: 100,
        insert: 0,
        scan: 0,
    };
    let mut t = Table::new(
        "Group commit — write IOPS vs fsyncing writers (100% updates, fsync every write)",
        &[
            "policy",
            "writers",
            "write IOPS",
            "fsync p50 us",
            "flushes/fsync",
            "handles/commit",
            "barriers",
        ],
    );
    let mut run = |label: &str, policy: CommitPolicy, writers: usize| -> (f64, f64) {
        let mut session = PushdownSession::builder(
            YcsbMix::new(entries.clone(), storm, seed)
                .write_size(512)
                .fsync_every(1),
        )
        .dispatch(DispatchMode::DriverHook)
        .commit_policy(policy)
        .seed(seed)
        .build()
        .expect("session");
        let (report, stats) = session.run_closed_loop(writers, duration);
        assert_eq!(stats.errors, 0, "write chains must complete cleanly");
        let secs = report.sim_time as f64 / 1e9;
        let write_iops = stats.writes as f64 / secs;
        let commit = report.commit;
        t.row(vec![
            label.to_string(),
            writers.to_string(),
            iops(write_iops),
            us(report.fsync_latency.quantile(0.5) as f64),
            format!("{:.2}", commit.flushes_per_fsync()),
            format!("{:.1}", commit.mean_handles()),
            commit.commits.to_string(),
        ]);
        (write_iops, commit.flushes_per_fsync())
    };
    for &w in writer_counts {
        let (base_iops, base_fpf) = run("per-fsync", CommitPolicy::PerFsync, w);
        // One barrier per fsync, minus at most the handful still in
        // flight when the run's clock expires.
        assert!(
            base_fpf > 0.9 && base_fpf <= 1.0 + 1e-9,
            "per-fsync must pay ~one barrier per fsync at {w} writers (got {base_fpf:.3})"
        );
        let (group_iops, group_fpf) = run(
            "group",
            CommitPolicy::Group {
                max_wait_us: 30,
                max_handles: w as u32,
            },
            w,
        );
        let (wb_iops, _) = run(
            "writeback",
            CommitPolicy::Writeback {
                flush_interval_us: 200,
            },
            w,
        );
        if w >= 8 {
            assert!(
                group_fpf < 1.0,
                "group commit must share barriers at {w} writers (flushes/fsync {group_fpf:.3})"
            );
            assert!(
                group_iops >= 1.5 * base_iops,
                "group commit must amortize the barrier at {w} writers: {group_iops:.0} vs {base_iops:.0}"
            );
            assert!(
                wb_iops >= 1.2 * base_iops,
                "writeback must also share barriers at {w} writers: {wb_iops:.0} vs {base_iops:.0}"
            );
        }
    }
    t.note("group seals at max(writers) joined handles or 30us, whichever first");
    t.note("writeback seals fsyncs immediately and flushes idle journal dirt every 200us");
    t
}

// --- Fabric sweep (pushdown over NVMe-oF) ---------------------------------------

/// Network-latency sweep over the pointer-chase dependency chain — the
/// BPF-oF headline, end to end: remote dispatch without pushdown pays a
/// fabric round trip per dependent hop, pushdown-over-fabric runs the
/// whole chain target-side and pays ~1, and the gap between them grows
/// with the configured network latency. `LocalTransport` numbers ride
/// along as the baseline. The function asserts all three shapes.
pub fn fabric_sweep(scale: Scale) -> Table {
    fabric_sweep_with(scale, None)
}

/// [`fabric_sweep`] with an explicit seed override.
pub fn fabric_sweep_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(4077);
    const HOPS: u64 = 8;
    let duration = if scale.quick {
        8 * MILLISECOND
    } else {
        40 * MILLISECOND
    };
    let mut t = Table::new(
        "Fabric sweep — pushdown vs per-hop round trips, depth-8 chase, 2 threads",
        &[
            "one-way us",
            "dispatch",
            "chains/s",
            "p50 us",
            "IOPS",
            "capsules",
            "responses",
            "target-local",
        ],
    );
    let mut run = |mode: DispatchMode, link: Option<FabricConfig>, label: String| -> RunReport {
        let mut b = PushdownSession::builder(Chase::hops(HOPS))
            .dispatch(mode)
            .seed(seed);
        if let Some(link) = link {
            b = b.fabric(link);
        }
        let mut session = b.build().expect("session");
        let (report, stats) = session.run_closed_loop(2, duration);
        assert_eq!(stats.mismatches, 0, "offloaded chases must be correct");
        assert_eq!(stats.errors, 0, "{label}: no chain may fail");
        t.row(vec![
            label.clone(),
            mode.label().to_string(),
            iops(report.chains_per_sec),
            us(report.latency.quantile(0.5) as f64),
            iops(report.iops),
            report.fabric.capsules_sent.to_string(),
            report.fabric.responses.to_string(),
            report.fabric.target_local.to_string(),
        ]);
        report
    };
    let local = run(DispatchMode::DriverHook, None, "local".to_string());
    let local_p50 = local.latency.quantile(0.5);
    let mut prev_gap = 1.0;
    for one_way_us in [5u64, 20, 80] {
        let link = FabricConfig::symmetric(one_way_us * 1_000, one_way_us * 200);
        let nopd = run(
            DispatchMode::Remote,
            Some(link.clone()),
            format!("{one_way_us}"),
        );
        let pd = run(
            DispatchMode::DriverHook,
            Some(link),
            format!("{one_way_us}"),
        );
        for (name, r) in [("remote", &nopd), ("remote-pushdown", &pd)] {
            assert!(
                r.latency.quantile(0.5) > local_p50,
                "{name} p50 must exceed local p50 at {one_way_us}us one-way"
            );
        }
        assert!(
            pd.chains_per_sec > nopd.chains_per_sec && pd.iops > nopd.iops,
            "pushdown must out-run per-hop round trips at {one_way_us}us \
             ({:.0} vs {:.0} chains/s)",
            pd.chains_per_sec,
            nopd.chains_per_sec
        );
        let gap = nopd.mean_latency() / pd.mean_latency();
        assert!(
            gap > prev_gap,
            "the pushdown gap must grow with network latency \
             ({gap:.2}x at {one_way_us}us, was {prev_gap:.2}x)"
        );
        prev_gap = gap;
    }
    t.note(
        "remote (no pushdown) pays one fabric RTT per dependent hop; pushdown pays ~1 per chain",
    );
    t.note(&format!(
        "depth-{HOPS} chase: the latency gap approaches {HOPS}x as the wire dominates"
    ));
    t
}

// --- Fabric contention (multi-initiator BPF-oF target) --------------------------

/// Multi-initiator BPF-oF contention study: N initiators (1/2/4/8), each
/// a tenant with its own credit window over one shared target, hammer
/// fsynced 512 B write chains with and without write pushdown. Without
/// pushdown every chain holds an initiator credit across two full fabric
/// round trips (data capsule, then the flush barrier); with pushdown the
/// chain crosses once, journals and flushes target-side, and the flush
/// submits target-locally without touching the admission queue or the
/// credit window. The function asserts the headline: at 20us one-way
/// with 4 initiators, pushdown write throughput is at least 2x the
/// no-pushdown run, and aggregate throughput is monotone-then-saturating
/// in the initiator count for both arms.
pub fn fabric_contention(scale: Scale) -> Table {
    fabric_contention_with(scale, None)
}

/// [`fabric_contention`] with an explicit seed override.
pub fn fabric_contention_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(0xBF0F);
    let duration = if scale.quick {
        6 * MILLISECOND
    } else {
        30 * MILLISECOND
    };
    /// The ISSUE's headline operating point: a 20us one-way wire.
    const ONE_WAY: Nanos = 20_000;
    /// Per-initiator credit window — small enough that credit holding
    /// time, not thread count, bounds the no-pushdown arm.
    const WINDOW: usize = 2;
    /// Closed-loop writer threads per initiator (> WINDOW, so the
    /// window is the binding constraint when credits are slow to free).
    const THREADS: usize = 8;
    let entries: Vec<(u64, Vec<u8>)> = (0..128u64).map(|i| (i * 3, vec![7u8; 48])).collect();
    let write_mix = OpMix {
        read: 0,
        update: 100,
        insert: 0,
        scan: 0,
    };
    // 512 B journaled writes, fsync every chain: each chain is one data
    // capsule plus one flush barrier, so wire holds and the credit
    // window dominate over device service time.
    let workload = |tseed: u64| {
        YcsbMix::new(entries.clone(), write_mix, tseed)
            .write_size(SECTOR_SIZE)
            .fsync_every(1)
    };
    let mut t = Table::new(
        "Fabric contention — N initiators fsyncing 512 B writes at one BPF-oF target (20us one-way)",
        &[
            "initiators",
            "dispatch",
            "chains/s",
            "IOPS",
            "p50 us",
            "capsules",
            "responses",
            "target-local",
            "admit wait us",
        ],
    );
    let mut run = |ninit: usize, mode: DispatchMode| -> RunReport {
        let link = FabricConfig::symmetric(ONE_WAY, ONE_WAY / 5)
            .with_initiators(ninit)
            .with_initiator_window(WINDOW)
            // A real admission stage (0.5us/capsule, weighted round-
            // robin between initiators) plus queue-depth congestion
            // beyond an 8-capsule knee: the no-pushdown arm keeps twice
            // the capsules outstanding, so it pays both costs twice.
            .with_admit_ns(500)
            .with_congestion(8, 250);
        let mut g = TenantGroup::builder()
            .dispatch(mode)
            .seed(seed)
            .fabric(link)
            .build();
        for i in 0..ninit {
            g.add_tenant(
                workload(seed ^ (0xA5A5 + i as u64)),
                TenantLimits::default(),
            )
            .expect("initiator tenant");
        }
        let report = g.run_closed_loop(&vec![THREADS; ninit], duration);
        t.row(vec![
            ninit.to_string(),
            if mode == DispatchMode::DriverHook {
                "pushdown".to_string()
            } else {
                "no-pushdown".to_string()
            },
            iops(report.chains_per_sec),
            iops(report.iops),
            us(report.latency.quantile(0.5) as f64),
            report.fabric.capsules_sent.to_string(),
            report.fabric.responses.to_string(),
            report.fabric.target_local.to_string(),
            us(report.fabric.admit_wait_ns as f64),
        ]);
        report
    };
    let counts = [1usize, 2, 4, 8];
    let mut agg: Vec<(f64, f64)> = Vec::new(); // (no-pushdown, pushdown) chains/s per N
    let mut at4: Option<(RunReport, RunReport)> = None;
    for &n in &counts {
        let nopd = run(n, DispatchMode::Remote);
        let pd = run(n, DispatchMode::DriverHook);
        // Every initiator must make progress — the weighted round-robin
        // admission queue and per-initiator windows may not starve one.
        for r in [&nopd, &pd] {
            for b in &r.tenants {
                assert!(b.chains > 0, "initiator {} starved at N={n}", b.tenant);
            }
            assert_eq!(r.fabric_initiators.len(), n, "one stats row per initiator");
        }
        agg.push((nopd.chains_per_sec, pd.chains_per_sec));
        if n == 4 {
            at4 = Some((nopd, pd));
        }
    }
    // Headline: at 20us one-way and 4 initiators, write pushdown at
    // least doubles aggregate fsynced-write throughput.
    let (nopd4, pd4) = at4.expect("N=4 point");
    let speedup = pd4.chains_per_sec / nopd4.chains_per_sec;
    assert!(
        speedup >= 2.0,
        "write pushdown must at least double contended write throughput at \
         20us/4 initiators: {:.0} vs {:.0} chains/s ({speedup:.2}x)\n{}",
        pd4.chains_per_sec,
        nopd4.chains_per_sec,
        t.render()
    );
    assert!(
        pd4.iops >= 2.0 * nopd4.iops,
        "pushdown write IOPS must be >= 2x no-pushdown at 20us/4 initiators: \
         {:.0} vs {:.0}\n{}",
        pd4.iops,
        nopd4.iops,
        t.render()
    );
    // Aggregate throughput must be monotone-then-saturating in the
    // initiator count for both arms: each step either grows or holds
    // within a saturation tolerance, and the 4-initiator point must
    // clearly out-run a single initiator.
    for (arm, pick) in [("no-pushdown", 0usize), ("pushdown", 1usize)] {
        let series: Vec<f64> = agg
            .iter()
            .map(|p| if pick == 0 { p.0 } else { p.1 })
            .collect();
        for w in series.windows(2) {
            assert!(
                w[1] >= 0.9 * w[0],
                "{arm}: aggregate chains/s must be monotone up to saturation \
                 ({:.0} then {:.0})\n{}",
                w[0],
                w[1],
                t.render()
            );
        }
        assert!(
            series[2] >= 1.5 * series[0],
            "{arm}: four initiators must out-run one ({:.0} vs {:.0} chains/s)\n{}",
            series[2],
            series[0],
            t.render()
        );
    }
    t.note(&format!(
        "{THREADS} writer threads per initiator, credit window {WINDOW}, admission 0.5us/capsule, \
         congestion 0.25us/capsule beyond 8 outstanding"
    ));
    t.note("no-pushdown holds a credit across two RTTs per chain; pushdown crosses once and flushes target-side");
    t.note(&format!(
        "headline: {speedup:.2}x aggregate write throughput from pushdown at 4 initiators"
    ));
    t
}

// --- Tenant sweep (multi-tenant fairness over shared queue pairs) ---------------

/// Multi-tenant noisy-neighbor sweep: N tenant sessions share one queue
/// pair (`cores = 1`, ring depth 8). The victim runs depth-3 B-tree
/// lookups on one thread; each aggressor hammers deep fsynced write
/// chains. Three properties are asserted, not just tabulated: SQ slot
/// budgets plus weighted fair reaping bound the victim's p99 near its
/// solo baseline while the unfair configuration blows past it; a
/// program whose verified worst case exceeds the tenant's instruction
/// budget is rejected at install time; and a single-tenant group with
/// default limits reproduces the standalone session bit for bit.
pub fn tenant_sweep(scale: Scale) -> Table {
    tenant_sweep_with(scale, None)
}

/// [`tenant_sweep`] with an explicit seed override.
pub fn tenant_sweep_with(scale: Scale, seed: Option<u64>) -> Table {
    let seed = seed.unwrap_or(0x7E4A);
    let duration = if scale.quick {
        4 * MILLISECOND
    } else {
        20 * MILLISECOND
    };
    let entries: Vec<(u64, Vec<u8>)> = (0..256u64)
        .map(|i| {
            let mut v = vec![0u8; 48];
            v[..8].copy_from_slice(&(i * 17).to_le_bytes());
            (i * 3, v)
        })
        .collect();
    // Deep write chains: 4 KiB journaled payloads, fsync every 4th, so
    // the pain comes from SQ slot occupancy rather than flush barriers
    // (which serialize the victim no matter how the ring is shaped).
    let write_storm = OpMix {
        read: 0,
        update: 80,
        insert: 20,
        scan: 0,
    };
    let aggressor = |tseed: u64| {
        YcsbMix::new(entries.clone(), write_storm, tseed)
            .write_size(4096)
            .fsync_every(4)
    };
    let mut t = Table::new(
        "Tenant sweep — noisy neighbor over one shared queue pair (cores=1, qd=16, 8us/8-deep IRQ)",
        &[
            "setup",
            "tenants",
            "victim p99 us",
            "victim chains",
            "victim reap %",
            "aggr cmds",
            "sq parks",
        ],
    );
    let run = |fair: bool, victim: TenantLimits, aggr: TenantLimits, n_aggr: usize| {
        let mut g = TenantGroup::builder()
            .machine_config(MachineConfig {
                cores: 1,
                seed,
                // NIC-style moderation so completions arrive in mixed
                // batches — the regime where reap order matters and the
                // ring actually backs up.
                irq_coalesce_us: 8,
                irq_coalesce_depth: 8,
                ..MachineConfig::default()
            })
            .queue_depth(16)
            .fair_reap(fair)
            .build();
        let v = g
            .add_tenant(Btree::depth(3), victim)
            .expect("victim tenant");
        for i in 0..n_aggr {
            g.add_tenant(aggressor(seed ^ (0x9E37 + i as u64)), aggr)
                .expect("aggressor tenant");
        }
        // One victim thread; six threads per aggressor keep several
        // write chains in flight at once so the ring actually contends.
        let mut threads = vec![1usize];
        threads.extend(std::iter::repeat_n(6, n_aggr));
        let report = g.run_closed_loop(&threads, duration);
        (report, v)
    };
    let mut row = |label: &str, r: &RunReport, v: TenantId| -> f64 {
        let total_cqes: u64 = r.tenants.iter().map(|b| b.cqes).sum();
        let victim = r.tenant(v).expect("victim breakdown");
        let aggr_cmds: u64 = r
            .tenants
            .iter()
            .filter(|b| b.tenant != v)
            .map(|b| b.dev_writes + b.dev_flushes)
            .sum();
        let parks: u64 = r.tenants.iter().map(|b| b.sq_parks).sum();
        let p99 = victim.latency.quantile(0.99) as f64;
        t.row(vec![
            label.to_string(),
            r.tenants.len().to_string(),
            us(p99),
            victim.chains.to_string(),
            format!("{:.0}%", victim.reap_share(total_cqes) * 100.0),
            aggr_cmds.to_string(),
            parks.to_string(),
        ]);
        p99
    };
    // Baseline: the victim with the machine to itself.
    let (solo_r, solo_v) = run(false, TenantLimits::default(), TenantLimits::default(), 0);
    let solo_p99 = row("solo", &solo_r, solo_v);
    // Unfair: no SQ budgets, FIFO reaping — the aggressor owns the ring.
    let (unfair_r, unfair_v) = run(false, TenantLimits::default(), TenantLimits::default(), 1);
    let unfair_p99 = row("unfair x1", &unfair_r, unfair_v);
    // Fair: the aggressor is capped to 2 of the 8 SQ slots and the
    // victim gets 8x the reap weight.
    let victim_limits = TenantLimits::weighted(8);
    let aggr_limits = TenantLimits {
        sq_slots: Some(2),
        ..TenantLimits::default()
    };
    let (fair_r, fair_v) = run(true, victim_limits, aggr_limits, 1);
    let fair_p99 = row("fair x1", &fair_r, fair_v);
    for n in [2usize, 4] {
        let (r, v) = run(true, victim_limits, aggr_limits, n);
        row(&format!("fair x{n}"), &r, v);
    }
    assert!(
        unfair_p99 >= 1.5 * fair_p99,
        "budgets + fair reaping must cut the victim p99 well below the unshaped run: \
         {:.0}ns vs {:.0}ns\n{}",
        unfair_p99,
        fair_p99,
        t.render()
    );
    assert!(
        fair_p99 <= 1.25 * solo_p99,
        "the shaped victim p99 must stay near solo: {:.0}ns vs {:.0}ns solo\n{}",
        fair_p99,
        solo_p99,
        t.render()
    );
    assert!(
        unfair_p99 >= 1.4 * solo_p99,
        "the unshaped victim p99 must blow up vs solo: {:.0}ns vs {:.0}ns solo\n{}",
        unfair_p99,
        solo_p99,
        t.render()
    );
    let aggr_chains: u64 = fair_r
        .tenants
        .iter()
        .filter(|b| b.tenant != fair_v)
        .map(|b| b.chains)
        .sum();
    assert!(aggr_chains > 0, "the budgeted aggressor must not starve");

    // Verification-time resource bounds: a depth-3 traversal program
    // cannot fit a 4-instruction budget, and must be rejected before it
    // ever runs.
    let mut strict = TenantGroup::builder().seed(seed).build();
    let tight = TenantLimits {
        insn_budget: Some(4),
        ..TenantLimits::default()
    };
    let rejection = strict
        .add_tenant(Btree::depth(3), tight)
        .expect_err("over-budget program must be rejected at install time");
    let msg = format!("{rejection:?}");
    assert!(
        msg.contains("BudgetExceeded"),
        "rejection must cite the budget: {msg}"
    );

    // Bit-for-bit: one tenant with default limits reproduces the
    // standalone session on the same machine config and seed.
    let mut lone = TenantGroup::builder().seed(seed).build();
    lone.add_tenant(Btree::depth(3), TenantLimits::default())
        .expect("lone tenant");
    let grouped = lone.run_closed_loop(&[2], duration);
    let mut session = PushdownSession::builder(Btree::depth(3))
        .dispatch(DispatchMode::DriverHook)
        .seed(seed)
        .build()
        .expect("session");
    let (standalone, _) = session.run_closed_loop(2, duration);
    assert_eq!(
        (grouped.chains, grouped.ios),
        (standalone.chains, standalone.ios),
        "a single-tenant group must reproduce the standalone session"
    );
    assert_eq!(grouped.trace, standalone.trace, "layer traces must match");
    for q in [0.5, 0.99] {
        assert_eq!(
            grouped.latency.quantile(q),
            standalone.latency.quantile(q),
            "latency quantile {q} must match"
        );
    }

    t.note("victim: depth-3 B-tree reads, 1 thread; aggressors: 6 threads of 4 KiB journaled writes, fsync every 4th");
    t.note("fair rows: aggressors capped to 2/16 SQ slots, victim reap weight 8x");
    t.note("checked: over-budget install rejected; single-tenant group == standalone session bit-for-bit");
    t
}

// --- §4 extent stability -------------------------------------------------------

/// §4's TokuDB/YCSB measurement: how often do index-file extents change
/// under a write-heavy workload, and how many changes unmap blocks?
///
/// Model (documented in EXPERIMENTS.md): a TokuDB-like batch B-tree
/// checkpoints dirty nodes in ~4 MiB appends; in-place node updates
/// never touch extents; a background GC reclaims an old region a few
/// times a day. Rates follow the paper's YCSB setup (40r/40u/20i,
/// Zipfian 0.7) at a MariaDB-plausible operation rate.
pub fn extent_stability(scale: Scale) -> Table {
    let hours = if scale.quick { 2.0 } else { 24.0 };
    let insert_rate: f64 = 250.0; // inserts/s (20% of 1250 ops/s)
    let row_bytes: f64 = 100.0;
    let batch_bytes: f64 = (4u64 << 20) as f64;
    let gc_interval_s: f64 = 17_280.0; // ~5 per 24h
    let blocks = 1u64 << 23; // 4 GiB address space (24h of appends fits)

    let mut fs = ExtFs::mkfs(blocks);
    let mut store = bpfstor_device::SectorStore::new();
    let ino = fs.create("index.tokudb").expect("create");
    // Initial 32 MiB index.
    fs.fallocate(ino, 0, (32 << 20) / SECTOR_SIZE as u64, &mut store)
        .expect("fallocate");
    fs.take_events();

    let append_interval = batch_bytes / (insert_rate * row_bytes);
    let horizon = hours * 3600.0;
    let mut events: Vec<(f64, bool)> = Vec::new(); // (time, unmapping?)
    let mut t_next_append = append_interval;
    let mut t_next_gc = gc_interval_s;
    let mut appended_blocks = (32u64 << 20) / SECTOR_SIZE as u64;
    while t_next_append <= horizon || t_next_gc <= horizon {
        if t_next_append <= t_next_gc {
            if t_next_append > horizon {
                break;
            }
            let nblocks = (batch_bytes / SECTOR_SIZE as f64) as u64;
            fs.fallocate(ino, appended_blocks, nblocks, &mut store)
                .expect("append");
            appended_blocks += nblocks;
            for ev in fs.take_events() {
                events.push((t_next_append, matches!(ev, ExtentEvent::Unmapped { .. })));
            }
            t_next_append += append_interval;
        } else {
            if t_next_gc > horizon {
                break;
            }
            // GC: rewrite the most recent ~4 MiB region (checkpoint
            // cleanup) — truncate it away, then re-append it elsewhere.
            // This is the rare unmap+remap pattern the paper observed a
            // handful of times per day.
            let nblocks = (batch_bytes / SECTOR_SIZE as f64) as u64;
            let size = fs.file_size(ino).expect("size");
            fs.truncate(ino, size - batch_bytes as u64, &mut store)
                .expect("gc trunc");
            appended_blocks -= nblocks;
            fs.fallocate(ino, appended_blocks, nblocks, &mut store)
                .expect("gc rewrite");
            appended_blocks += nblocks;
            for ev in fs.take_events() {
                events.push((t_next_gc, matches!(ev, ExtentEvent::Unmapped { .. })));
            }
            t_next_gc += gc_interval_s;
        }
    }

    // Collapse events at the same instant into one "extent change".
    let mut change_times: Vec<f64> = Vec::new();
    let mut unmap_times: Vec<f64> = Vec::new();
    for (t, unmap) in &events {
        if change_times
            .last()
            .map(|l| (l - t).abs() > 1e-9)
            .unwrap_or(true)
        {
            change_times.push(*t);
        }
        if *unmap
            && unmap_times
                .last()
                .map(|l| (l - t).abs() > 1e-9)
                .unwrap_or(true)
        {
            unmap_times.push(*t);
        }
    }
    let mean_interval = if change_times.len() > 1 {
        (change_times.last().expect("nonempty") - change_times[0]) / (change_times.len() - 1) as f64
    } else {
        horizon
    };
    let unmaps_24h = unmap_times.len() as f64 * (24.0 / hours);

    let mut t = Table::new(
        "§4 extent stability — TokuDB-like index under YCSB 40r/40u/20i, Zipfian 0.7",
        &["metric", "measured", "paper"],
    );
    t.row(vec![
        "simulated hours".to_string(),
        format!("{hours:.1}"),
        "24".to_string(),
    ]);
    t.row(vec![
        "mean s between extent changes".to_string(),
        format!("{mean_interval:.0}"),
        "159".to_string(),
    ]);
    t.row(vec![
        "unmapping changes per 24h".to_string(),
        format!("{unmaps_24h:.0}"),
        "5".to_string(),
    ]);
    t.row(vec![
        "total extent changes".to_string(),
        change_times.len().to_string(),
        "-".to_string(),
    ]);
    t.note("in-place node updates never change extents; appends map new blocks without unmapping");
    t
}

/// Companion to the §4 claim: real LSM under the same YCSB mix — live
/// SSTables are never remapped during their lifetime; unmaps happen only
/// when compaction deletes whole files.
pub fn lsm_stability(scale: Scale) -> Table {
    let ops = if scale.quick { 60_000u64 } else { 600_000 };
    let rate = 2_000.0; // ops/s, for time extrapolation
    let mut fs = ExtFs::mkfs(1 << 22);
    let mut store = bpfstor_device::SectorStore::new();
    let mut lsm = LsmTree::new(LsmConfig::default());
    let mut gen = YcsbGen::new(
        OpMix::paper_tokudb(),
        KeyDist::zipfian(10_000, 0.7),
        10_000,
        0x2C5B,
    );
    let value = |k: u64| -> Vec<u8> {
        let mut v = vec![0u8; 64];
        v[..8].copy_from_slice(&k.to_le_bytes());
        v
    };
    for _ in 0..ops {
        match gen.next_op() {
            Op::Read(k) => {
                let _ = lsm.get(&mut fs, &mut store, k).expect("get");
            }
            Op::Update(k) | Op::Insert(k) => {
                lsm.put(&mut fs, &mut store, k, value(k)).expect("put");
            }
            Op::Scan { .. } => {}
        }
    }
    let stats = lsm.stats();
    let fstats = fs.stats();
    let hours = ops as f64 / rate / 3_600.0;
    let mut t = Table::new(
        "§4 companion — LSM SSTable lifecycle under YCSB 40r/40u/20i",
        &["metric", "value"],
    );
    t.row(vec!["operations".to_string(), ops.to_string()]);
    t.row(vec![
        "simulated hours (@2k ops/s)".to_string(),
        format!("{hours:.2}"),
    ]);
    t.row(vec![
        "memtable flushes".to_string(),
        stats.flushes.to_string(),
    ]);
    t.row(vec![
        "compactions".to_string(),
        stats.compactions.to_string(),
    ]);
    t.row(vec![
        "tables written".to_string(),
        stats.tables_written.to_string(),
    ]);
    t.row(vec![
        "tables deleted".to_string(),
        stats.tables_deleted.to_string(),
    ]);
    t.row(vec![
        "fs unmap changes".to_string(),
        fstats.unmap_changes.to_string(),
    ]);
    t.row(vec![
        "live tables".to_string(),
        lsm.table_count().to_string(),
    ]);
    // The §4 invariant: live tables' extents never changed post-creation.
    let mut stable = true;
    for level in lsm.levels() {
        for table in level {
            let (gen_now, unmap_gen) = fs.generations(table.ino).expect("gens");
            // Creation writes bump the generation; afterwards nothing may.
            let _ = gen_now;
            if unmap_gen != 0 {
                stable = false;
            }
        }
    }
    t.row(vec![
        "live tables extent-stable".to_string(),
        if stable {
            "yes".to_string()
        } else {
            "NO".to_string()
        },
    ]);
    t.note("every unmap comes from deleting a whole dead table, never from a live one");
    t
}

// --- Ablations ------------------------------------------------------------------

/// A1: throughput of the driver hook as extent invalidations become more
/// frequent (cost of the paper's heavy-handed invalidate + re-arm). The
/// session's automatic rearm-and-retry absorbs each invalidation; the
/// retry column counts how many chains the library restarted on the
/// application's behalf.
pub fn ablation_extent_cache(scale: Scale) -> Table {
    let window = if scale.quick {
        4 * MILLISECOND
    } else {
        10 * MILLISECOND
    };
    let windows = 8;
    let mut t = Table::new(
        "Ablation A1 — invalidation frequency vs driver-hook goodput",
        &[
            "invalidations/s",
            "good chains/s",
            "failed chains/s",
            "auto retries",
        ],
    );
    for invalidate_every in [0u32, 4, 2, 1] {
        let mut session = PushdownSession::builder(Btree::depth(6))
            .dispatch(DispatchMode::DriverHook)
            .seed(91)
            .retry_budget(2)
            .build()
            .expect("session");
        let mut good = 0u64;
        let mut failed = 0u64;
        let mut retries = 0u64;
        for w in 0..windows {
            let invalidate = invalidate_every != 0 && w % invalidate_every as usize == 0;
            if invalidate {
                session.schedule_relocation(window / 2);
            }
            let (report, stats) = session.run_closed_loop(2, window);
            good += report.chains - report.errors;
            failed += report.errors;
            retries += stats.rearm_retries;
        }
        let secs = windows as f64 * window as f64 / 1e9;
        let rate = if invalidate_every == 0 {
            0.0
        } else {
            1.0 / (invalidate_every as f64 * window as f64 / 1e9)
        };
        t.row(vec![
            format!("{rate:.0}"),
            iops(good as f64 / secs),
            iops(failed as f64 / secs),
            retries.to_string(),
        ]);
    }
    t.note("invalidations must be rare for the soft-state cache to pay off (§4)");
    t.note("the session re-arms and retries invalidated chains automatically");
    t
}

/// A2: sensitivity of the driver-hook speedup to BPF execution cost
/// (interpreter vs JIT vs pathological).
pub fn ablation_bpf_cost(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation A2 — BPF per-insn cost vs driver-hook speedup (depth 6, 6 threads)",
        &["ns/insn", "speedup vs user"],
    );
    let duration = scale.sweep_duration();
    let base = lookup_run(6, DispatchMode::User, 6, duration, 13).chains_per_sec;
    for per_insn in [0u64, 2, 10, 50] {
        let mut cfg = MachineConfig::default();
        // Field-of-field override; struct-update syntax cannot reach it.
        cfg.costs.bpf_per_insn = per_insn;
        let mut session = PushdownSession::builder(Btree::depth(6))
            .dispatch(DispatchMode::DriverHook)
            .machine_config(cfg)
            .seed(13)
            .build()
            .expect("session");
        let (report, stats) = session.run_closed_loop(6, duration);
        assert_eq!(stats.mismatches, 0);
        t.row(vec![
            per_insn.to_string(),
            ratio(report.chains_per_sec / base),
        ]);
    }
    t.note("0 ns/insn approximates a JIT; the speedup is robust until costs dwarf the stack");
    t
}

/// A3: the §4 resubmission bound — completion vs abort as the bound
/// tightens below the chain depth.
pub fn ablation_resubmit_bound(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation A3 — NVMe resubmission bound vs depth-10 chains",
        &["bound", "ok %", "aborted %", "chains/s"],
    );
    let duration = scale.sweep_duration();
    for bound in [2u32, 4, 8, 16, 256] {
        let cfg = MachineConfig {
            resubmit_bound: bound,
            ..MachineConfig::default()
        };
        let mut session = PushdownSession::builder(Btree::depth(10).check(false))
            .dispatch(DispatchMode::DriverHook)
            .machine_config(cfg)
            .seed(29)
            .build()
            .expect("session");
        let (report, _) = session.run_closed_loop(2, duration);
        let total = report.chains.max(1) as f64;
        t.row(vec![
            bound.to_string(),
            format!(
                "{:.0}",
                (report.chains - report.errors) as f64 / total * 100.0
            ),
            format!("{:.0}", report.errors as f64 / total * 100.0),
            iops(report.chains_per_sec),
        ]);
    }
    t.note("bounds below the tree depth abort every chain (fairness vs utility trade-off)");
    t
}

/// A4: the granularity-mismatch fallback — multi-block hops on a
/// fragmented file bounce every hop back to the application.
pub fn ablation_split_fallback(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation A4 — extent fragmentation vs driver-hook chains (1 KiB hops)",
        &["layout", "chains/s", "fallbacks/chain", "errors"],
    );
    let chains = if scale.quick { 200 } else { 1_000 };
    for fragmented in [false, true] {
        let mut m = Machine::new(MachineConfig::default());
        let hops = 8usize;
        let node_bytes = 1024usize;
        // Build the chain image: node i points to (i+1)*1024.
        let mut image = vec![0u8; hops * node_bytes];
        for i in 0..hops {
            let next = if i + 1 < hops {
                ((i + 1) * node_bytes) as u64
            } else {
                u64::MAX
            };
            image[i * node_bytes..i * node_bytes + 8].copy_from_slice(&next.to_le_bytes());
        }
        if fragmented {
            // Interleave block allocation with a decoy file so every
            // extent of chain.db is a single block.
            let (fs, store) = m.fs_and_store();
            let ino_a = fs.create("chain.db").expect("create a");
            let ino_b = fs.create("decoy").expect("create b");
            for (i, chunk) in image.chunks(SECTOR_SIZE).enumerate() {
                fs.write(ino_a, (i * SECTOR_SIZE) as u64, chunk, store)
                    .expect("write a");
                fs.write(ino_b, (i * SECTOR_SIZE) as u64, &[0u8; SECTOR_SIZE], store)
                    .expect("write b");
            }
            fs.take_events();
        } else {
            m.create_file("chain.db", &image).expect("create");
        }
        let fd = m.open("chain.db", true).expect("open");
        m.install(fd, bpfstor_core::pointer_chase_program(), 0)
            .expect("install");
        let mut d =
            ChaseFallbackDriver::new(fd, DispatchMode::DriverHook, node_bytes as u32, chains);
        let report = m.run_closed_loop(1, HUGE, &mut d);
        let per_chain = d.fallbacks as f64 / d.completed.max(1) as f64;
        t.row(vec![
            if fragmented {
                "fragmented"
            } else {
                "contiguous"
            }
            .to_string(),
            iops(d.completed as f64 / (report.sim_time as f64 / 1e9)),
            format!("{per_chain:.1}"),
            d.errors.to_string(),
        ]);
    }
    t.note("fragmented extents force the §4 BIO fallback on every hop, erasing the offload win");
    t
}

/// Sanity assertions over the headline shapes; used by integration tests
/// and the `figures` bench to fail loudly if calibration drifts.
pub fn shape_checks(scale: Scale) -> Vec<(String, bool)> {
    let duration = scale.sweep_duration();
    let mut checks = Vec::new();

    // Fig 3b shape: driver hook >= 1.8x at depth 10 with 12 threads.
    let base = lookup_run(10, DispatchMode::User, 12, duration, 7).chains_per_sec;
    let drv = lookup_run(10, DispatchMode::DriverHook, 12, duration, 7).chains_per_sec;
    let r = drv / base;
    checks.push((
        format!("fig3b depth10 t12 ratio {r:.2} in [1.8, 3.2]"),
        (1.8..=3.2).contains(&r),
    ));

    // Fig 3a shape: syscall hook gives modest gains.
    let sys = lookup_run(10, DispatchMode::SyscallHook, 12, duration, 7).chains_per_sec;
    let r = sys / base;
    checks.push((
        format!("fig3a depth10 t12 ratio {r:.2} in [1.02, 1.45]"),
        (1.02..=1.45).contains(&r),
    ));

    // Fig 3c shape: latency cut 30-60% at depth 10.
    let lu = lookup_run(10, DispatchMode::User, 1, duration, 7).mean_latency();
    let ld = lookup_run(10, DispatchMode::DriverHook, 1, duration, 7).mean_latency();
    let cut = 1.0 - ld / lu;
    checks.push((
        format!("fig3c depth10 cut {:.0}% in [30, 60]", cut * 100.0),
        (0.30..=0.60).contains(&cut),
    ));

    checks
}

/// Helper shared by A1-style flows: a run that must produce only OK or
/// invalidation statuses (used in tests).
pub fn statuses_are_expected(status: &ChainStatus) -> bool {
    status.is_ok() || matches!(status, ChainStatus::ExtentMiss | ChainStatus::Invalidated)
}

// --- JIT sweep (compiled vs interpreted hook execution) -------------------------

/// A compute-heavy pointer-chase program: per hop, `rounds` unrolled
/// mixing steps over the file offset before reading the next-hop
/// pointer. The ALU body dominates execution, so the per-hop host-CPU
/// gap between the engines is well above clock noise.
fn compute_chase_program(rounds: usize) -> bpfstor_vm::Program {
    use bpfstor_vm::{action, ctx_off, helper, Asm, Program, Width};
    let mut a = Asm::new();
    a.ldx(Width::DW, 6, 1, ctx_off::DATA)
        .ldx(Width::DW, 7, 1, ctx_off::DATA_END)
        .mov64_reg(8, 6)
        .add64_imm(8, 16)
        .jgt_reg(8, 7, "halt")
        .ldx(Width::DW, 0, 1, ctx_off::FILE_OFF);
    for i in 0..rounds {
        // FNV-style mixing, all ALU64: the hot shape pushdown filters
        // and aggregations spend their cycles in.
        a.mul64_imm(0, 0x0100_0193)
            .xor64_imm(0, 0x5BD1 ^ i as i32)
            .mov64_reg(9, 0)
            .rsh64_imm(9, 17)
            .add64_reg(0, 9);
    }
    a.stx(Width::DW, 10, -8, 0) // keep the result observable
        .ldx(Width::DW, 2, 6, 0) // next offset or sentinel
        .ld_imm64(3, u64::MAX)
        .jeq_reg(2, 3, "emit")
        .mov64_reg(1, 2)
        .call(helper::RESUBMIT)
        .mov64_imm(0, action::ACT_RESUBMIT as i32)
        .exit()
        .label("emit")
        .mov64_reg(1, 6)
        .add64_imm(1, 8)
        .mov64_imm(2, 8)
        .call(helper::EMIT)
        .mov64_imm(0, action::ACT_EMIT as i32)
        .exit()
        .label("halt")
        .mov64_imm(0, action::ACT_HALT as i32)
        .exit();
    Program::new(a.finish().expect("assembles"))
}

/// A file of `depth` blocks where block `i` points at block `i+1` and
/// the last block holds the `u64::MAX` sentinel.
fn chain_file_blocks(depth: usize) -> Vec<u8> {
    let mut data = vec![0u8; depth * SECTOR_SIZE];
    for i in 0..depth {
        let at = i * SECTOR_SIZE;
        let next = if i + 1 < depth {
            ((i + 1) * SECTOR_SIZE) as u64
        } else {
            u64::MAX
        };
        data[at..at + 8].copy_from_slice(&next.to_le_bytes());
    }
    data
}

/// JIT sweep: the same compute-heavy driver-hook chase run under both
/// execution engines across chain depths. Simulated behaviour must not
/// drift at all — identical chains, IOs, errors, and `trace.bpf`
/// charge (retired-instruction counts are engine-independent) — while
/// the *measured* host CPU per hop, sampled by an injected monotonic
/// clock, must favour the compiled tier at depth ≥ 4.
pub fn jit_sweep(scale: Scale) -> Table {
    jit_sweep_with(scale, None)
}

/// [`jit_sweep`] with an explicit seed override.
pub fn jit_sweep_with(scale: Scale, seed: Option<u64>) -> Table {
    use bpfstor_kernel::{ExecClock, ExecEngine};

    let seed = seed.unwrap_or(0x317);
    let chains: u64 = if scale.quick { 200 } else { 1_000 };
    const ROUNDS: usize = 300; // ~1.5k ALU insns per hop
    let mut t = Table::new(
        "JIT sweep — measured host CPU per hook invocation, interp vs compiled",
        &[
            "depth",
            "hops",
            "interp ns/hop",
            "compiled ns/hop",
            "speedup",
            "sim bpf drift",
        ],
    );
    let run = |depth: usize, engine: ExecEngine| -> RunReport {
        let t0 = std::time::Instant::now();
        let mut m = Machine::new(MachineConfig {
            seed,
            exec_engine: engine,
            exec_clock: Some(ExecClock::new(move || t0.elapsed().as_nanos() as u64)),
            ..MachineConfig::default()
        });
        m.create_file("chain.db", &chain_file_blocks(depth))
            .expect("create");
        let fd = m.open("chain.db", true).expect("open");
        m.install(fd, compute_chase_program(ROUNDS), 0)
            .expect("install verifies");
        let mut d = crate::drivers::ChaseFallbackDriver::new(
            fd,
            DispatchMode::DriverHook,
            SECTOR_SIZE as u32,
            chains,
        );
        let report = m.run_closed_loop(1, HUGE, &mut d);
        assert_eq!(d.completed, chains, "every chase completes");
        assert_eq!(d.errors, 0);
        report
    };
    // The host clock is noisy; run each engine a few times per depth
    // and keep the fastest — the minimum estimator, which also absorbs
    // first-run warmup (page faults, cold branch predictors). The
    // simulation is deterministic, so repeats double as a check that
    // the simulated figures cannot drift run to run.
    const REPEATS: usize = 3;
    let best = |depth: usize, engine: ExecEngine| -> (RunReport, f64) {
        let mut min = f64::INFINITY;
        let mut first: Option<RunReport> = None;
        for _ in 0..REPEATS {
            let r = run(depth, engine);
            let ns = match engine {
                ExecEngine::Interp => r.exec.interp_ns_per_hop(),
                ExecEngine::Compiled => r.exec.compiled_ns_per_hop(),
            };
            min = min.min(ns);
            if let Some(f) = &first {
                assert_eq!(f.trace.bpf, r.trace.bpf, "simulation must be deterministic");
                assert_eq!(f.sim_time, r.sim_time, "simulation must be deterministic");
            }
            first.get_or_insert(r);
        }
        (first.expect("REPEATS > 0"), min)
    };
    for depth in [1usize, 2, 4, 8] {
        let (ri, interp) = best(depth, ExecEngine::Interp);
        let (rc, compiled) = best(depth, ExecEngine::Compiled);
        // Zero behavioural drift: the engines retire identical
        // instruction streams, so every simulated figure matches.
        assert_eq!(ri.chains, rc.chains, "depth {depth}: chain drift");
        assert_eq!(ri.ios, rc.ios, "depth {depth}: IO drift");
        assert_eq!(ri.errors, rc.errors);
        assert_eq!(
            ri.trace.bpf, rc.trace.bpf,
            "depth {depth}: simulated BPF charge must be engine-independent"
        );
        assert_eq!(ri.sim_time, rc.sim_time, "depth {depth}: timeline drift");
        let hops = chains * depth as u64;
        assert_eq!(ri.exec.interp_hops, hops);
        assert_eq!(rc.exec.compiled_hops, hops);
        assert_eq!(rc.exec.fallbacks, 0, "verified programs always compile");
        if depth >= 4 {
            assert!(
                compiled < interp,
                "depth {depth}: compiled tier must beat the interpreter \
                 ({compiled:.0} vs {interp:.0} ns/hop)"
            );
        }
        t.row(vec![
            depth.to_string(),
            hops.to_string(),
            format!("{interp:.0}"),
            format!("{compiled:.0}"),
            ratio(interp / compiled.max(1.0)),
            "0".to_string(),
        ]);
    }
    t.note("ns/hop is measured host CPU (injected monotonic clock), not simulated time");
    t.note("each figure is the minimum over 3 runs — the noise-robust estimator");
    t.note("simulated totals (chains, IOs, trace.bpf, sim_time) are asserted bit-identical");
    t
}

/// The default until-forever horizon used with chain-count-bounded runs.
pub const FOREVER: Nanos = HUGE;

/// One simulated second, re-exported for binaries.
pub const ONE_SECOND: Nanos = SECOND;
