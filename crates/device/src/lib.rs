//! Simulated storage devices for the `bpfstor` reproduction.
//!
//! The paper's Figure 1 spans four device generations — a Seagate Exos
//! X16 HDD, Intel 750-class TLC NAND, a first-generation Optane SSD
//! (900P), and the P5800X prototype whose Table 1 numbers anchor the
//! whole evaluation. This crate models all four as the same NVMe-style
//! device with different [`profile::DeviceProfile`]s:
//!
//! - a sparse [`store::SectorStore`] holds real bytes (B-tree nodes,
//!   SSTables), so completions carry genuine data for BPF programs to
//!   parse;
//! - [`ring::Ring`] implements the submission/completion queue pairs with
//!   real head/tail wrap semantics;
//! - [`device::NvmeDevice`] batch-services queued commands when the
//!   doorbell rings, overlapping them across parallel channels with
//!   service times drawn from the profile's latency distribution;
//!   completions are posted to the CQ ring at their completion instants
//!   and reaped by the kernel's interrupt handler.
//!
//! Everything is deterministic given the seed of the [`bpfstor_sim::SimRng`]
//! the device is constructed with.

pub mod device;
pub mod profile;
pub mod ring;
pub mod store;
pub mod transport;

pub use device::{
    CmdKind, DeviceStats, NvmeCommand, NvmeCompletion, NvmeDevice, NvmeOp, QueueError, QueuePairId,
};
pub use profile::{DeviceClass, DeviceProfile};
pub use ring::Ring;
pub use store::{SectorStore, SECTOR_SIZE};
pub use transport::{
    FabricConfig, FabricStats, FabricTransport, InitiatorStats, LocalTransport, SubmitClass,
    Transport, TransportConfig,
};
