//! Fixed-capacity ring buffers with NVMe head/tail semantics.
//!
//! Submission and completion queues are circular arrays; the producer
//! advances `tail`, the consumer advances `head`, and the queue is full
//! when `tail + 1 == head` (mod size), i.e. one slot is sacrificed, as
//! in the NVMe specification.

/// A bounded FIFO ring.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    slots: Vec<Option<T>>,
    head: usize,
    tail: usize,
}

impl<T> Ring<T> {
    /// Creates a ring with capacity `size - 1` (one slot reserved, per
    /// NVMe full/empty disambiguation).
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`.
    pub fn new(size: usize) -> Self {
        assert!(size >= 2, "ring needs at least two slots");
        Ring {
            slots: (0..size).map(|_| None).collect(),
            head: 0,
            tail: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        (self.tail + self.slots.len() - self.head) % self.slots.len()
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// True if one more push would be rejected.
    pub fn is_full(&self) -> bool {
        (self.tail + 1) % self.slots.len() == self.head
    }

    /// Usable capacity (`size - 1`).
    pub fn capacity(&self) -> usize {
        self.slots.len() - 1
    }

    /// Enqueues an entry; returns it back if the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        if self.is_full() {
            return Err(v);
        }
        self.slots[self.tail] = Some(v);
        self.tail = (self.tail + 1) % self.slots.len();
        Ok(())
    }

    /// Dequeues the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let v = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        v
    }

    /// Drains all queued entries in FIFO order.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = Ring::new(4);
        r.push(1).expect("push");
        r.push(2).expect("push");
        r.push(3).expect("push");
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_is_size_minus_one() {
        let mut r = Ring::new(4);
        assert_eq!(r.capacity(), 3);
        r.push(1).expect("1");
        r.push(2).expect("2");
        r.push(3).expect("3");
        assert!(r.is_full());
        assert_eq!(r.push(4), Err(4));
    }

    #[test]
    fn wraparound_preserves_order() {
        let mut r = Ring::new(4);
        for round in 0..10 {
            r.push(round * 2).expect("push a");
            r.push(round * 2 + 1).expect("push b");
            assert_eq!(r.pop(), Some(round * 2));
            assert_eq!(r.pop(), Some(round * 2 + 1));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn len_tracks() {
        let mut r = Ring::new(8);
        assert_eq!(r.len(), 0);
        r.push(()).expect("push");
        r.push(()).expect("push");
        assert_eq!(r.len(), 2);
        r.pop();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn drain_all_empties() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i).expect("push");
        }
        assert_eq!(r.drain_all(), vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_ring_rejected() {
        Ring::<u8>::new(1);
    }
}
