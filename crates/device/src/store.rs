//! Sparse sector-addressed backing store.
//!
//! Devices are thin-provisioned: sectors hold real bytes only once
//! written; reads of unwritten sectors return zeroes (as a freshly
//! formatted namespace would). Sparse storage lets the benchmarks build
//! deep B-trees whose *address space* is large while the host memory
//! footprint stays proportional to the bytes actually written.

use std::collections::HashMap;

/// Logical block (sector) size in bytes. The paper's experiments use
/// 512 B reads, so one B-tree node = one sector = one NVMe command.
pub const SECTOR_SIZE: usize = 512;

/// A sparse array of 512-byte sectors.
#[derive(Debug, Default)]
pub struct SectorStore {
    sectors: HashMap<u64, Box<[u8; SECTOR_SIZE]>>,
    reads: u64,
    writes: u64,
}

impl SectorStore {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        SectorStore::default()
    }

    /// Reads `nlb` sectors starting at `slba` into a fresh buffer.
    pub fn read(&mut self, slba: u64, nlb: u32) -> Vec<u8> {
        self.reads += u64::from(nlb);
        let mut out = vec![0u8; nlb as usize * SECTOR_SIZE];
        for i in 0..nlb as u64 {
            if let Some(s) = self.sectors.get(&(slba + i)) {
                let at = i as usize * SECTOR_SIZE;
                out[at..at + SECTOR_SIZE].copy_from_slice(&s[..]);
            }
        }
        out
    }

    /// Writes `data` starting at `slba`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of [`SECTOR_SIZE`]; the
    /// NVMe command layer only issues whole sectors.
    pub fn write(&mut self, slba: u64, data: &[u8]) {
        assert!(
            data.len().is_multiple_of(SECTOR_SIZE),
            "write length {} not sector-aligned",
            data.len()
        );
        for (i, chunk) in data.chunks_exact(SECTOR_SIZE).enumerate() {
            self.writes += 1;
            let sector = self
                .sectors
                .entry(slba + i as u64)
                .or_insert_with(|| Box::new([0u8; SECTOR_SIZE]));
            sector.copy_from_slice(chunk);
        }
    }

    /// Discards (TRIMs) `nlb` sectors starting at `slba`, returning them
    /// to the all-zero thin-provisioned state.
    pub fn discard(&mut self, slba: u64, nlb: u32) {
        for i in 0..nlb as u64 {
            self.sectors.remove(&(slba + i));
        }
    }

    /// Number of sectors currently materialised.
    pub fn allocated_sectors(&self) -> usize {
        self.sectors.len()
    }

    /// Total sectors read since creation.
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Total sectors written since creation.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_sectors_read_zero() {
        let mut s = SectorStore::new();
        assert_eq!(s.read(42, 2), vec![0u8; 1024]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = SectorStore::new();
        let data: Vec<u8> = (0..SECTOR_SIZE).map(|i| (i % 251) as u8).collect();
        s.write(7, &data);
        assert_eq!(s.read(7, 1), data);
    }

    #[test]
    fn multi_sector_write_spans() {
        let mut s = SectorStore::new();
        let data: Vec<u8> = (0..2 * SECTOR_SIZE).map(|i| (i % 13) as u8).collect();
        s.write(100, &data);
        assert_eq!(s.read(100, 2), data);
        assert_eq!(s.read(101, 1), data[SECTOR_SIZE..]);
        assert_eq!(s.allocated_sectors(), 2);
    }

    #[test]
    fn partial_overlap_reads_mix_zero_and_data() {
        let mut s = SectorStore::new();
        s.write(5, &[0xAAu8; SECTOR_SIZE]);
        let out = s.read(4, 3);
        assert!(out[..SECTOR_SIZE].iter().all(|&b| b == 0));
        assert!(out[SECTOR_SIZE..2 * SECTOR_SIZE].iter().all(|&b| b == 0xAA));
        assert!(out[2 * SECTOR_SIZE..].iter().all(|&b| b == 0));
    }

    #[test]
    fn discard_zeroes() {
        let mut s = SectorStore::new();
        s.write(9, &[1u8; SECTOR_SIZE]);
        s.discard(9, 1);
        assert_eq!(s.read(9, 1), vec![0u8; SECTOR_SIZE]);
        assert_eq!(s.allocated_sectors(), 0);
    }

    #[test]
    #[should_panic(expected = "not sector-aligned")]
    fn unaligned_write_panics() {
        SectorStore::new().write(0, &[0u8; 100]);
    }

    #[test]
    fn counters() {
        let mut s = SectorStore::new();
        s.write(0, &[0u8; SECTOR_SIZE]);
        s.read(0, 4);
        assert_eq!(s.total_writes(), 1);
        assert_eq!(s.total_reads(), 4);
    }
}
