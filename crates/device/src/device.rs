//! The NVMe device model.
//!
//! The device owns the backing store and a set of internal channels.
//! Commands arrive through per-queue-pair submission rings; ringing the
//! doorbell assigns each command to the earliest-free channel, samples a
//! service time from the profile, and returns the completion (with real
//! data for reads) stamped with the simulated time at which the
//! interrupt should fire. The kernel turns those stamps into events.
//!
//! The model captures what the paper's evaluation depends on:
//!
//! - **service latency** per device class (Figure 1, Table 1 "storage
//!   device" row);
//! - **internal parallelism**: a P5800X sustains millions of 512 B IOPS
//!   only because commands overlap across channels — this is what lets
//!   driver-hook resubmission scale in Figure 3b/3d;
//! - **queue backpressure**: full rings reject submissions, which the
//!   kernel surfaces as EBUSY, exactly like a saturated hardware queue.

use bpfstor_sim::{Nanos, SimRng};

use crate::profile::DeviceProfile;
use crate::ring::Ring;
use crate::store::SectorStore;

/// Identifies a submission/completion queue pair.
pub type QueuePairId = usize;

/// Errors surfaced to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The submission ring is full (driver should back off and retry).
    SubmissionFull,
    /// Unknown queue pair id.
    NoSuchQueue,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::SubmissionFull => write!(f, "submission queue full"),
            QueueError::NoSuchQueue => write!(f, "no such queue pair"),
        }
    }
}

impl std::error::Error for QueueError {}

/// An NVMe command (the subset the storage stack issues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmeOp {
    /// Read `nlb` sectors from `slba`.
    Read {
        /// Starting logical block address.
        slba: u64,
        /// Number of logical blocks.
        nlb: u32,
    },
    /// Write the payload at `slba`.
    Write {
        /// Starting logical block address.
        slba: u64,
        /// Sector-aligned payload.
        data: Vec<u8>,
    },
    /// Persist all volatile state (modelled as a fixed-cost barrier).
    Flush,
}

/// A submitted command awaiting service.
#[derive(Debug, Clone)]
pub struct NvmeCommand {
    /// Driver-assigned command id, echoed in the completion.
    pub cid: u64,
    /// The operation.
    pub op: NvmeOp,
}

/// A completed command, stamped with its interrupt time.
#[derive(Debug, Clone)]
pub struct NvmeCompletion {
    /// Echoed command id.
    pub cid: u64,
    /// Queue pair the command was submitted on.
    pub qp: QueuePairId,
    /// Simulated time at which the completion interrupt fires.
    pub complete_at: Nanos,
    /// Read payload (empty for writes/flushes).
    pub data: Vec<u8>,
    /// Device channel that serviced the command (for utilization stats).
    pub channel: usize,
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read commands serviced.
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Flush commands serviced.
    pub flushes: u64,
    /// Total busy nanoseconds summed over channels.
    pub busy_ns: Nanos,
    /// Submissions rejected due to a full ring.
    pub rejected: u64,
}

struct QueuePair {
    sq: Ring<NvmeCommand>,
}

/// The simulated NVMe device.
pub struct NvmeDevice {
    profile: DeviceProfile,
    store: SectorStore,
    channels: Vec<Nanos>,
    queues: Vec<QueuePair>,
    rng: SimRng,
    stats: DeviceStats,
}

impl NvmeDevice {
    /// Creates a device with `nr_queues` queue pairs.
    ///
    /// # Panics
    ///
    /// Panics if `nr_queues == 0`.
    pub fn new(profile: DeviceProfile, nr_queues: usize, rng: SimRng) -> Self {
        assert!(nr_queues > 0, "need at least one queue pair");
        let queues = (0..nr_queues)
            .map(|_| QueuePair {
                sq: Ring::new(profile.queue_depth),
            })
            .collect();
        NvmeDevice {
            channels: vec![0; profile.channels],
            store: SectorStore::new(),
            queues,
            rng,
            profile,
            stats: DeviceStats::default(),
        }
    }

    /// The device's profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of queue pairs.
    pub fn nr_queues(&self) -> usize {
        self.queues.len()
    }

    /// Direct store access for formatting / test setup (bypasses timing,
    /// like writing an image to the device before boot).
    pub fn store_mut(&mut self) -> &mut SectorStore {
        &mut self.store
    }

    /// Read-only store access.
    pub fn store(&self) -> &SectorStore {
        &self.store
    }

    /// Enqueues a command on queue pair `qp` without ringing the
    /// doorbell.
    pub fn submit(&mut self, qp: QueuePairId, cmd: NvmeCommand) -> Result<(), QueueError> {
        let q = self.queues.get_mut(qp).ok_or(QueueError::NoSuchQueue)?;
        q.sq.push(cmd).map_err(|_| {
            self.stats.rejected += 1;
            QueueError::SubmissionFull
        })
    }

    /// Rings the doorbell for queue pair `qp` at time `now`: services all
    /// queued commands, returning completions stamped with interrupt
    /// times (in service order).
    pub fn ring_doorbell(
        &mut self,
        now: Nanos,
        qp: QueuePairId,
    ) -> Result<Vec<NvmeCompletion>, QueueError> {
        let q = self.queues.get_mut(qp).ok_or(QueueError::NoSuchQueue)?;
        let cmds = q.sq.drain_all();
        let mut out = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            out.push(self.service(now, qp, cmd));
        }
        Ok(out)
    }

    /// Submits and services one command in a single call (the common path
    /// for the simulated driver, which rings the doorbell per command).
    pub fn submit_and_ring(
        &mut self,
        now: Nanos,
        qp: QueuePairId,
        cmd: NvmeCommand,
    ) -> Result<NvmeCompletion, QueueError> {
        // Reject as a full ring would, then service immediately.
        let q = self.queues.get_mut(qp).ok_or(QueueError::NoSuchQueue)?;
        if q.sq.is_full() {
            self.stats.rejected += 1;
            return Err(QueueError::SubmissionFull);
        }
        Ok(self.service(now, qp, cmd))
    }

    fn service(&mut self, now: Nanos, qp: QueuePairId, cmd: NvmeCommand) -> NvmeCompletion {
        // Earliest-free channel, lowest index on ties (deterministic).
        let mut ch = 0;
        for (i, &t) in self.channels.iter().enumerate().skip(1) {
            if t < self.channels[ch] {
                ch = i;
            }
        }
        let start = self.channels[ch].max(now);
        let (dur, data) = match &cmd.op {
            NvmeOp::Read { slba, nlb } => {
                self.stats.reads += 1;
                let d = self.profile.read_latency.sample(&mut self.rng);
                (d, self.store.read(*slba, *nlb))
            }
            NvmeOp::Write { slba, data } => {
                self.stats.writes += 1;
                let d = self.profile.write_latency.sample(&mut self.rng);
                self.store.write(*slba, data);
                (d, Vec::new())
            }
            NvmeOp::Flush => {
                self.stats.flushes += 1;
                // A flush drains every channel: barrier semantics.
                let drain = *self.channels.iter().max().expect("channels");
                let extra = 1_000; // controller bookkeeping
                let end = drain.max(now) + extra;
                for t in &mut self.channels {
                    *t = end;
                }
                self.stats.busy_ns += extra;
                return NvmeCompletion {
                    cid: cmd.cid,
                    qp,
                    complete_at: end,
                    data: Vec::new(),
                    channel: ch,
                };
            }
        };
        let end = start + dur;
        self.channels[ch] = end;
        self.stats.busy_ns += dur;
        NvmeCompletion {
            cid: cmd.cid,
            qp,
            complete_at: end,
            data,
            channel: ch,
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets channel occupancy and counters to time zero (the stored
    /// bytes are untouched). Called by the simulated kernel between
    /// benchmark runs that reuse one machine.
    pub fn reset_timing(&mut self) {
        for c in &mut self.channels {
            *c = 0;
        }
        self.stats = DeviceStats::default();
    }

    /// Mean channel utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.stats.busy_ns as f64 / (horizon as f64 * self.channels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use crate::store::SECTOR_SIZE;
    use bpfstor_sim::{LatencyDist, SimRng};

    fn fixed_profile(latency: Nanos, channels: usize) -> DeviceProfile {
        DeviceProfile {
            name: "test",
            class: crate::profile::DeviceClass::NvmGen2,
            read_latency: LatencyDist::Constant(latency),
            write_latency: LatencyDist::Constant(latency),
            channels,
            queue_depth: 8,
        }
    }

    fn dev(latency: Nanos, channels: usize) -> NvmeDevice {
        NvmeDevice::new(fixed_profile(latency, channels), 1, SimRng::seed(1))
    }

    fn read_cmd(cid: u64, slba: u64) -> NvmeCommand {
        NvmeCommand {
            cid,
            op: NvmeOp::Read { slba, nlb: 1 },
        }
    }

    #[test]
    fn read_returns_written_data_with_latency() {
        let mut d = dev(3_000, 1);
        d.store_mut().write(5, &[0xCDu8; SECTOR_SIZE]);
        let c = d.submit_and_ring(100, 0, read_cmd(1, 5)).expect("submit");
        assert_eq!(c.complete_at, 3_100);
        assert_eq!(c.cid, 1);
        assert_eq!(c.data, vec![0xCDu8; SECTOR_SIZE]);
    }

    #[test]
    fn single_channel_serializes() {
        let mut d = dev(1_000, 1);
        let a = d.submit_and_ring(0, 0, read_cmd(1, 0)).expect("a");
        let b = d.submit_and_ring(0, 0, read_cmd(2, 1)).expect("b");
        assert_eq!(a.complete_at, 1_000);
        assert_eq!(b.complete_at, 2_000, "queued behind a");
    }

    #[test]
    fn channels_overlap() {
        let mut d = dev(1_000, 4);
        let done: Vec<Nanos> = (0..4)
            .map(|i| {
                d.submit_and_ring(0, 0, read_cmd(i, i))
                    .expect("submit")
                    .complete_at
            })
            .collect();
        assert_eq!(done, vec![1_000; 4], "four channels run in parallel");
        let fifth = d.submit_and_ring(0, 0, read_cmd(9, 9)).expect("submit");
        assert_eq!(fifth.complete_at, 2_000, "fifth waits for a channel");
    }

    #[test]
    fn doorbell_batches() {
        let mut d = dev(500, 2);
        for i in 0..3 {
            d.submit(0, read_cmd(i, i)).expect("enqueue");
        }
        let cs = d.ring_doorbell(0, 0).expect("doorbell");
        assert_eq!(cs.len(), 3);
        let times: Vec<Nanos> = cs.iter().map(|c| c.complete_at).collect();
        assert_eq!(times, vec![500, 500, 1_000]);
    }

    #[test]
    fn submission_queue_full_rejects() {
        let mut d = dev(100, 1);
        // queue_depth 8 -> capacity 7.
        for i in 0..7 {
            d.submit(0, read_cmd(i, i)).expect("fits");
        }
        assert_eq!(
            d.submit(0, read_cmd(99, 0)),
            Err(QueueError::SubmissionFull)
        );
        assert_eq!(d.stats().rejected, 1);
    }

    #[test]
    fn bad_queue_id() {
        let mut d = dev(100, 1);
        assert_eq!(
            d.submit(3, read_cmd(0, 0)).unwrap_err(),
            QueueError::NoSuchQueue
        );
    }

    #[test]
    fn write_then_read_via_commands() {
        let mut d = dev(200, 2);
        let payload = vec![7u8; SECTOR_SIZE];
        let w = d
            .submit_and_ring(
                0,
                0,
                NvmeCommand {
                    cid: 1,
                    op: NvmeOp::Write {
                        slba: 3,
                        data: payload.clone(),
                    },
                },
            )
            .expect("write");
        let r = d
            .submit_and_ring(w.complete_at, 0, read_cmd(2, 3))
            .expect("read");
        assert_eq!(r.data, payload);
    }

    #[test]
    fn flush_drains_all_channels() {
        let mut d = dev(1_000, 2);
        d.submit_and_ring(0, 0, read_cmd(1, 0)).expect("a");
        d.submit_and_ring(0, 0, read_cmd(2, 1)).expect("b");
        let f = d
            .submit_and_ring(
                0,
                0,
                NvmeCommand {
                    cid: 3,
                    op: NvmeOp::Flush,
                },
            )
            .expect("flush");
        assert!(f.complete_at > 1_000, "flush waits for inflight I/O");
        let after = d.submit_and_ring(0, 0, read_cmd(4, 2)).expect("after");
        assert!(after.complete_at >= f.complete_at, "barrier holds");
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev(100, 1);
        d.submit_and_ring(0, 0, read_cmd(1, 0)).expect("r");
        d.submit_and_ring(
            100,
            0,
            NvmeCommand {
                cid: 2,
                op: NvmeOp::Write {
                    slba: 0,
                    data: vec![0u8; SECTOR_SIZE],
                },
            },
        )
        .expect("w");
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.busy_ns, 200);
        assert!((d.utilization(200) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn iops_capacity_matches_channels() {
        // 16 channels at 1us each -> 16 IOPS/us; issue a dense stream and
        // confirm the completion horizon matches capacity.
        let mut d = dev(1_000, 16);
        let n = 1_600u64;
        let mut last = 0;
        for i in 0..n {
            let c = d.submit_and_ring(0, 0, read_cmd(i, i)).expect("submit");
            last = last.max(c.complete_at);
        }
        // n commands / 16 channels * 1us = 100us.
        assert_eq!(last, 100_000);
    }
}
