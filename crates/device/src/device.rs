//! The NVMe device model.
//!
//! The device owns the backing store and a set of internal channels.
//! Commands arrive through per-queue-pair submission rings; ringing the
//! doorbell consumes the SQ, assigns each command to the earliest-free
//! channel, and samples a service time from the profile. Serviced
//! commands sit *in flight* until their completion instant, at which
//! point [`NvmeDevice::post_ready`] moves them onto the completion ring
//! (with real data for reads); the host's interrupt handler drains the
//! CQ with [`NvmeDevice::reap`]. The kernel decides *when* the
//! interrupt fires (coalescing is host policy, not device policy).
//!
//! The model captures what the paper's evaluation depends on:
//!
//! - **service latency** per device class (Figure 1, Table 1 "storage
//!   device" row);
//! - **internal parallelism**: a P5800X sustains millions of 512 B IOPS
//!   only because commands overlap across channels — this is what lets
//!   driver-hook resubmission scale in Figure 3b/3d;
//! - **queue backpressure**: a queue pair admits at most `queue_depth -
//!   1` outstanding commands (submitted, in flight, or un-reaped);
//!   beyond that, submissions are rejected, which the kernel surfaces
//!   as EBUSY-style backpressure, exactly like a saturated hardware
//!   queue.

use bpfstor_sim::{Nanos, SimRng};

use crate::profile::DeviceProfile;
use crate::ring::Ring;
use crate::store::SectorStore;

/// Identifies a submission/completion queue pair.
pub type QueuePairId = usize;

/// Errors surfaced to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The submission ring is full (driver should back off and retry).
    SubmissionFull,
    /// Unknown queue pair id.
    NoSuchQueue,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::SubmissionFull => write!(f, "submission queue full"),
            QueueError::NoSuchQueue => write!(f, "no such queue pair"),
        }
    }
}

impl std::error::Error for QueueError {}

/// An NVMe command (the subset the storage stack issues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmeOp {
    /// Read `nlb` sectors from `slba`.
    Read {
        /// Starting logical block address.
        slba: u64,
        /// Number of logical blocks.
        nlb: u32,
    },
    /// Write the payload at `slba`.
    Write {
        /// Starting logical block address.
        slba: u64,
        /// Sector-aligned payload.
        data: Vec<u8>,
    },
    /// Persist all volatile state (modelled as a fixed-cost barrier).
    Flush,
}

/// A submitted command awaiting service.
#[derive(Debug, Clone)]
pub struct NvmeCommand {
    /// Driver-assigned command id, echoed in the completion.
    pub cid: u64,
    /// The operation.
    pub op: NvmeOp,
}

/// The command class echoed in a completion (for per-class accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// A read command.
    Read,
    /// A write command.
    Write,
    /// A flush barrier.
    Flush,
}

/// A completed command, stamped with its completion instant.
#[derive(Debug, Clone)]
pub struct NvmeCompletion {
    /// Echoed command id.
    pub cid: u64,
    /// Queue pair the command was submitted on.
    pub qp: QueuePairId,
    /// What class of command completed.
    pub kind: CmdKind,
    /// Simulated time at which the command finishes on its channel (the
    /// earliest instant a CQE for it can be posted).
    pub complete_at: Nanos,
    /// Read payload (empty for writes/flushes).
    pub data: Vec<u8>,
    /// Device channel that serviced the command (for utilization stats).
    pub channel: usize,
    /// Non-device time a transport added on top of the service instant
    /// (wire latency + target-side capsule processing). Zero straight
    /// off the device; the fabric transport fills it in.
    pub fabric_ns: Nanos,
    /// Instant the doorbell that put this command in motion rang (the
    /// start of the doorbell→reap gap tracked in
    /// [`DeviceStats::reap_lag_ns`]).
    pub rang_at: Nanos,
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read commands serviced.
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Flush commands serviced.
    pub flushes: u64,
    /// Total busy nanoseconds summed over channels.
    pub busy_ns: Nanos,
    /// Submissions rejected because the queue pair was at capacity.
    pub rejected: u64,
    /// Doorbell rings observed.
    pub doorbells: u64,
    /// Doorbell rings whose batch carried at least one write or flush
    /// command (the write path's MMIO footprint).
    pub write_doorbells: u64,
    /// Non-empty reap batches drained from the CQ. In interrupt mode
    /// every batch is one completion interrupt; in polled mode this
    /// counts productive polls instead (the kernel's `LayerTrace::irqs`
    /// is the authoritative hardware-interrupt count).
    pub irqs: u64,
    /// Completion-queue entries reaped.
    pub cqes: u64,
    /// Write/flush completion-queue entries reaped.
    pub write_cqes: u64,
    /// Poll-loop iterations that found the completion queue empty (only
    /// a polled reaper burns these).
    pub empty_polls: u64,
    /// High-water mark of CQEs posted and waiting to be reaped on any
    /// queue pair — the hybrid scheduler's load signal.
    pub cq_backlog_hwm: u64,
    /// Total doorbell→reap gap summed over reaped CQEs (mean reap
    /// latency is `reap_lag_ns / cqes`).
    pub reap_lag_ns: Nanos,
}

struct QueuePair {
    sq: Ring<NvmeCommand>,
    cq: Ring<NvmeCompletion>,
    /// Serviced commands whose completion instant has not been posted
    /// to the CQ yet, kept sorted by `complete_at` (stable, so ties
    /// preserve service order).
    inflight: Vec<NvmeCompletion>,
    /// Commands admitted but not yet reaped (SQ + inflight + CQ). This
    /// is the driver's tag budget: it caps at ring capacity.
    outstanding: usize,
}

/// The simulated NVMe device.
pub struct NvmeDevice {
    profile: DeviceProfile,
    store: SectorStore,
    channels: Vec<Nanos>,
    queues: Vec<QueuePair>,
    rng: SimRng,
    stats: DeviceStats,
}

impl NvmeDevice {
    /// Creates a device with `nr_queues` queue pairs.
    ///
    /// # Panics
    ///
    /// Panics if `nr_queues == 0`.
    pub fn new(profile: DeviceProfile, nr_queues: usize, rng: SimRng) -> Self {
        assert!(nr_queues > 0, "need at least one queue pair");
        let queues = (0..nr_queues)
            .map(|_| QueuePair {
                sq: Ring::new(profile.queue_depth),
                cq: Ring::new(profile.queue_depth),
                inflight: Vec::new(),
                outstanding: 0,
            })
            .collect();
        NvmeDevice {
            channels: vec![0; profile.channels],
            store: SectorStore::new(),
            queues,
            rng,
            profile,
            stats: DeviceStats::default(),
        }
    }

    /// The device's profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of queue pairs.
    pub fn nr_queues(&self) -> usize {
        self.queues.len()
    }

    /// Usable slots per queue pair (`queue_depth - 1`, one slot
    /// sacrificed per the NVMe full/empty disambiguation).
    pub fn queue_capacity(&self) -> usize {
        self.profile.queue_depth - 1
    }

    /// Commands admitted on `qp` that have not been reaped yet.
    pub fn outstanding(&self, qp: QueuePairId) -> usize {
        self.queues.get(qp).map_or(0, |q| q.outstanding)
    }

    /// True when `qp` can admit `n` more commands right now.
    pub fn can_accept(&self, qp: QueuePairId, n: usize) -> bool {
        self.queues
            .get(qp)
            .is_some_and(|q| q.outstanding + n <= self.queue_capacity())
    }

    /// Driver-side backpressure accounting: counts a submission the
    /// driver declined to attempt because [`NvmeDevice::can_accept`]
    /// said the queue pair was at capacity.
    pub fn record_rejection(&mut self) {
        self.stats.rejected += 1;
    }

    /// Direct store access for formatting / test setup (bypasses timing,
    /// like writing an image to the device before boot).
    pub fn store_mut(&mut self) -> &mut SectorStore {
        &mut self.store
    }

    /// Read-only store access.
    pub fn store(&self) -> &SectorStore {
        &self.store
    }

    /// Enqueues a command on queue pair `qp` without ringing the
    /// doorbell.
    ///
    /// # Errors
    ///
    /// [`QueueError::SubmissionFull`] when the queue pair is at its
    /// outstanding-command capacity (counted in
    /// [`DeviceStats::rejected`]), [`QueueError::NoSuchQueue`] for bad
    /// ids.
    pub fn submit(&mut self, qp: QueuePairId, cmd: NvmeCommand) -> Result<(), QueueError> {
        let cap = self.queue_capacity();
        let q = self.queues.get_mut(qp).ok_or(QueueError::NoSuchQueue)?;
        if q.outstanding >= cap || q.sq.is_full() {
            self.stats.rejected += 1;
            return Err(QueueError::SubmissionFull);
        }
        q.sq.push(cmd).map_err(|_| QueueError::SubmissionFull)?;
        q.outstanding += 1;
        Ok(())
    }

    /// Rings the doorbell for queue pair `qp` at time `now`: consumes
    /// every queued command, assigns channels and service times, and
    /// returns the completion instants (in service order). The serviced
    /// commands stay in flight until [`NvmeDevice::post_ready`] moves
    /// them to the completion ring.
    ///
    /// # Errors
    ///
    /// [`QueueError::NoSuchQueue`] for bad ids.
    pub fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError> {
        let q = self.queues.get_mut(qp).ok_or(QueueError::NoSuchQueue)?;
        let cmds = q.sq.drain_all();
        self.stats.doorbells += 1;
        if cmds.iter().any(|c| !matches!(c.op, NvmeOp::Read { .. })) {
            self.stats.write_doorbells += 1;
        }
        let mut done = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            done.push(self.service(now, qp, cmd));
        }
        let times = done.iter().map(|c| c.complete_at).collect();
        self.queues[qp].inflight.extend(done);
        Ok(times)
    }

    /// Posts every in-flight completion whose instant has passed onto
    /// the completion ring, in completion-time order (service order on
    /// ties). Returns how many CQEs were posted. Completions that do
    /// not fit the CQ stay in flight for the next call.
    pub fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize {
        let Some(q) = self.queues.get_mut(qp) else {
            return 0;
        };
        // Stable sort keeps service order on ties; the list is sorted
        // runs appended per doorbell, so this is near-linear.
        q.inflight.sort_by_key(|c| c.complete_at);
        let ready = q.inflight.partition_point(|c| c.complete_at <= now);
        let free = q.cq.capacity() - q.cq.len();
        let take = ready.min(free);
        for c in q.inflight.drain(..take) {
            let _ = q.cq.push(c);
        }
        let backlog = q.cq.len() as u64;
        self.stats.cq_backlog_hwm = self.stats.cq_backlog_hwm.max(backlog);
        take
    }

    /// Drains up to `max` entries from the completion ring (the IRQ
    /// handler's reap loop), freeing their queue slots.
    pub fn reap(&mut self, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion> {
        let Some(q) = self.queues.get_mut(qp) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while out.len() < max {
            match q.cq.pop() {
                Some(c) => {
                    q.outstanding -= 1;
                    out.push(c);
                }
                None => break,
            }
        }
        if !out.is_empty() {
            self.stats.irqs += 1;
            self.stats.cqes += out.len() as u64;
            self.stats.write_cqes += out
                .iter()
                .filter(|c| !matches!(c.kind, CmdKind::Read))
                .count() as u64;
        }
        out
    }

    /// Like [`NvmeDevice::reap`], but also accounts the doorbell→reap
    /// gap of each drained CQE at host-visible time `now` (the polled /
    /// interrupt reaper's entry point).
    pub fn reap_at(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion> {
        let out = self.reap(qp, max);
        for c in &out {
            self.stats.reap_lag_ns += now.saturating_sub(c.rang_at);
        }
        out
    }

    /// Records one poll-loop iteration that found the CQ empty.
    pub fn record_empty_poll(&mut self) {
        self.stats.empty_polls += 1;
    }

    /// Folds an externally observed completion backlog (e.g. the fabric
    /// initiator's ready list) into the high-water mark.
    pub fn note_cq_backlog(&mut self, backlog: usize) {
        self.stats.cq_backlog_hwm = self.stats.cq_backlog_hwm.max(backlog as u64);
    }

    /// Folds an externally measured doorbell→reap gap (e.g. measured at
    /// the fabric initiator) into [`DeviceStats::reap_lag_ns`].
    pub fn note_reap_lag(&mut self, lag: Nanos) {
        self.stats.reap_lag_ns += lag;
    }

    /// CQEs currently posted and waiting to be reaped on `qp`.
    pub fn cq_backlog(&self, qp: QueuePairId) -> usize {
        self.queues.get(qp).map_or(0, |q| q.cq.len())
    }

    fn service(&mut self, now: Nanos, qp: QueuePairId, cmd: NvmeCommand) -> NvmeCompletion {
        // Earliest-free channel, lowest index on ties (deterministic).
        let mut ch = 0;
        for (i, &t) in self.channels.iter().enumerate().skip(1) {
            if t < self.channels[ch] {
                ch = i;
            }
        }
        let start = self.channels[ch].max(now);
        let (kind, dur, data) = match &cmd.op {
            NvmeOp::Read { slba, nlb } => {
                self.stats.reads += 1;
                let d = self.profile.read_latency.sample(&mut self.rng);
                (CmdKind::Read, d, self.store.read(*slba, *nlb))
            }
            NvmeOp::Write { slba, data } => {
                self.stats.writes += 1;
                let d = self.profile.write_latency.sample(&mut self.rng);
                self.store.write(*slba, data);
                (CmdKind::Write, d, Vec::new())
            }
            NvmeOp::Flush => {
                self.stats.flushes += 1;
                // A flush drains every channel: barrier semantics.
                let drain = *self.channels.iter().max().expect("channels");
                let extra = 1_000; // controller bookkeeping
                let end = drain.max(now) + extra;
                for t in &mut self.channels {
                    *t = end;
                }
                self.stats.busy_ns += extra;
                return NvmeCompletion {
                    cid: cmd.cid,
                    qp,
                    kind: CmdKind::Flush,
                    complete_at: end,
                    data: Vec::new(),
                    channel: ch,
                    fabric_ns: 0,
                    rang_at: now,
                };
            }
        };
        let end = start + dur;
        self.channels[ch] = end;
        self.stats.busy_ns += dur;
        NvmeCompletion {
            cid: cmd.cid,
            qp,
            kind,
            complete_at: end,
            data,
            channel: ch,
            fabric_ns: 0,
            rang_at: now,
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Resets channel occupancy, counters, and queue-pair state to time
    /// zero (the stored bytes are untouched). Called by the simulated
    /// kernel between benchmark runs that reuse one machine.
    pub fn reset_timing(&mut self) {
        for c in &mut self.channels {
            *c = 0;
        }
        for q in &mut self.queues {
            q.sq.drain_all();
            q.cq.drain_all();
            q.inflight.clear();
            q.outstanding = 0;
        }
        self.stats = DeviceStats::default();
    }

    /// Mean channel utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.stats.busy_ns as f64 / (horizon as f64 * self.channels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use crate::store::SECTOR_SIZE;
    use bpfstor_sim::{LatencyDist, SimRng};

    fn fixed_profile(latency: Nanos, channels: usize) -> DeviceProfile {
        DeviceProfile {
            name: "test",
            class: crate::profile::DeviceClass::NvmGen2,
            read_latency: LatencyDist::Constant(latency),
            write_latency: LatencyDist::Constant(latency),
            channels,
            queue_depth: 8,
        }
    }

    fn dev(latency: Nanos, channels: usize) -> NvmeDevice {
        NvmeDevice::new(fixed_profile(latency, channels), 1, SimRng::seed(1))
    }

    fn read_cmd(cid: u64, slba: u64) -> NvmeCommand {
        NvmeCommand {
            cid,
            op: NvmeOp::Read { slba, nlb: 1 },
        }
    }

    /// Submit one command, ring the doorbell, and reap its completion
    /// (posting at its completion instant) — the old synchronous path,
    /// spelled through the queued API.
    fn submit_ring_reap(d: &mut NvmeDevice, now: Nanos, cmd: NvmeCommand) -> NvmeCompletion {
        d.submit(0, cmd).expect("submit");
        let times = d.ring_doorbell(now, 0).expect("doorbell");
        let t = *times.last().expect("serviced");
        d.post_ready(t, 0);
        d.reap(0, usize::MAX).pop().expect("cqe")
    }

    #[test]
    fn read_returns_written_data_with_latency() {
        let mut d = dev(3_000, 1);
        d.store_mut().write(5, &[0xCDu8; SECTOR_SIZE]);
        let c = submit_ring_reap(&mut d, 100, read_cmd(1, 5));
        assert_eq!(c.complete_at, 3_100);
        assert_eq!(c.cid, 1);
        assert_eq!(c.data, vec![0xCDu8; SECTOR_SIZE]);
    }

    #[test]
    fn single_channel_serializes() {
        let mut d = dev(1_000, 1);
        let a = submit_ring_reap(&mut d, 0, read_cmd(1, 0));
        let b = submit_ring_reap(&mut d, 0, read_cmd(2, 1));
        assert_eq!(a.complete_at, 1_000);
        assert_eq!(b.complete_at, 2_000, "queued behind a");
    }

    #[test]
    fn channels_overlap() {
        let mut d = dev(1_000, 4);
        let done: Vec<Nanos> = (0..4)
            .map(|i| submit_ring_reap(&mut d, 0, read_cmd(i, i)).complete_at)
            .collect();
        assert_eq!(done, vec![1_000; 4], "four channels run in parallel");
        let fifth = submit_ring_reap(&mut d, 0, read_cmd(9, 9));
        assert_eq!(fifth.complete_at, 2_000, "fifth waits for a channel");
    }

    #[test]
    fn doorbell_batches_and_cq_posts_in_time_order() {
        let mut d = dev(500, 2);
        for i in 0..3 {
            d.submit(0, read_cmd(i, i)).expect("enqueue");
        }
        let times = d.ring_doorbell(0, 0).expect("doorbell");
        assert_eq!(times, vec![500, 500, 1_000]);
        // Nothing is visible before its completion instant.
        assert_eq!(d.post_ready(499, 0), 0);
        assert_eq!(d.cq_backlog(0), 0);
        // The two channel-parallel completions post together...
        assert_eq!(d.post_ready(500, 0), 2);
        let first = d.reap(0, usize::MAX);
        assert_eq!(
            first.iter().map(|c| c.cid).collect::<Vec<_>>(),
            vec![0, 1],
            "ties keep service order"
        );
        // ...and the queued third posts at its own instant.
        assert_eq!(d.post_ready(1_000, 0), 1);
        assert_eq!(d.reap(0, usize::MAX)[0].cid, 2);
    }

    #[test]
    fn submission_queue_full_rejects() {
        let mut d = dev(100, 1);
        // queue_depth 8 -> capacity 7.
        assert_eq!(d.queue_capacity(), 7);
        for i in 0..7 {
            d.submit(0, read_cmd(i, i)).expect("fits");
        }
        assert!(!d.can_accept(0, 1));
        assert_eq!(
            d.submit(0, read_cmd(99, 0)),
            Err(QueueError::SubmissionFull)
        );
        assert_eq!(d.stats().rejected, 1);
    }

    #[test]
    fn outstanding_commands_block_submission_until_reaped() {
        // The doorbell consumes the SQ, but slots only free at reap: the
        // driver's tag budget, not just ring occupancy.
        let mut d = dev(100, 1);
        for i in 0..7 {
            d.submit(0, read_cmd(i, i)).expect("fits");
        }
        d.ring_doorbell(0, 0).expect("doorbell");
        assert_eq!(d.outstanding(0), 7, "in flight still holds slots");
        assert_eq!(
            d.submit(0, read_cmd(8, 0)),
            Err(QueueError::SubmissionFull),
            "no tag free before a reap"
        );
        d.post_ready(1_000, 0);
        let reaped = d.reap(0, usize::MAX);
        assert_eq!(reaped.len(), 7);
        assert_eq!(d.outstanding(0), 0);
        d.submit(0, read_cmd(8, 0))
            .expect("slots freed by the reap");
    }

    #[test]
    fn bad_queue_id() {
        let mut d = dev(100, 1);
        assert_eq!(
            d.submit(3, read_cmd(0, 0)).unwrap_err(),
            QueueError::NoSuchQueue
        );
        assert_eq!(d.ring_doorbell(0, 3).unwrap_err(), QueueError::NoSuchQueue);
    }

    #[test]
    fn write_then_read_via_commands() {
        let mut d = dev(200, 2);
        let payload = vec![7u8; SECTOR_SIZE];
        let w = submit_ring_reap(
            &mut d,
            0,
            NvmeCommand {
                cid: 1,
                op: NvmeOp::Write {
                    slba: 3,
                    data: payload.clone(),
                },
            },
        );
        let r = submit_ring_reap(&mut d, w.complete_at, read_cmd(2, 3));
        assert_eq!(r.data, payload);
    }

    #[test]
    fn flush_drains_all_channels() {
        let mut d = dev(1_000, 2);
        submit_ring_reap(&mut d, 0, read_cmd(1, 0));
        submit_ring_reap(&mut d, 0, read_cmd(2, 1));
        let f = submit_ring_reap(
            &mut d,
            0,
            NvmeCommand {
                cid: 3,
                op: NvmeOp::Flush,
            },
        );
        assert!(f.complete_at > 1_000, "flush waits for inflight I/O");
        let after = submit_ring_reap(&mut d, 0, read_cmd(4, 2));
        assert!(after.complete_at >= f.complete_at, "barrier holds");
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev(100, 1);
        submit_ring_reap(&mut d, 0, read_cmd(1, 0));
        submit_ring_reap(
            &mut d,
            100,
            NvmeCommand {
                cid: 2,
                op: NvmeOp::Write {
                    slba: 0,
                    data: vec![0u8; SECTOR_SIZE],
                },
            },
        );
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.busy_ns, 200);
        assert_eq!(s.doorbells, 2);
        assert_eq!(s.irqs, 2);
        assert_eq!(s.cqes, 2);
        assert!((d.utilization(200) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coalesced_reap_counts_one_irq() {
        let mut d = dev(500, 4);
        for i in 0..4 {
            d.submit(0, read_cmd(i, i)).expect("fits");
        }
        d.ring_doorbell(0, 0).expect("doorbell");
        d.post_ready(500, 0);
        let cqes = d.reap(0, usize::MAX);
        assert_eq!(cqes.len(), 4);
        let s = d.stats();
        assert_eq!(s.irqs, 1, "one interrupt served four completions");
        assert_eq!(s.cqes, 4);
    }

    #[test]
    fn reset_timing_clears_queue_state() {
        let mut d = dev(100, 1);
        d.submit(0, read_cmd(1, 0)).expect("submit");
        d.ring_doorbell(0, 0).expect("doorbell");
        d.reset_timing();
        assert_eq!(d.outstanding(0), 0);
        assert_eq!(d.cq_backlog(0), 0);
        assert_eq!(d.post_ready(u64::MAX, 0), 0, "no stale inflight survives");
        assert_eq!(d.stats(), DeviceStats::default());
    }

    #[test]
    fn backlog_hwm_and_reap_lag_track_the_load_signal() {
        let mut d = dev(500, 2);
        for i in 0..3 {
            d.submit(0, read_cmd(i, i)).expect("enqueue");
        }
        // Doorbell at t=0: two complete at 500, the third at 1_000.
        d.ring_doorbell(0, 0).expect("doorbell");
        d.post_ready(500, 0);
        assert_eq!(d.stats().cq_backlog_hwm, 2, "two CQEs sat un-reaped");
        // Reap the pair late, at t=700: lag = 700ns each from the t=0
        // doorbell.
        assert_eq!(d.reap_at(700, 0, usize::MAX).len(), 2);
        assert_eq!(d.stats().reap_lag_ns, 1_400);
        d.post_ready(1_000, 0);
        assert_eq!(d.stats().cq_backlog_hwm, 2, "hwm is sticky");
        assert_eq!(d.reap_at(1_000, 0, usize::MAX).len(), 1);
        assert_eq!(d.stats().reap_lag_ns, 2_400);
        d.record_empty_poll();
        d.note_cq_backlog(9);
        assert_eq!(d.stats().empty_polls, 1);
        assert_eq!(d.stats().cq_backlog_hwm, 9, "external backlog folds in");
        // reset_timing clears the load signal with the rest of the stats.
        d.reset_timing();
        let s = d.stats();
        assert_eq!((s.empty_polls, s.cq_backlog_hwm, s.reap_lag_ns), (0, 0, 0));
        assert_eq!(s, DeviceStats::default());
    }

    #[test]
    fn iops_capacity_matches_channels() {
        // 16 channels at 1us each -> 16 IOPS/us; issue a dense stream and
        // confirm the completion horizon matches capacity.
        let mut d = dev(1_000, 16);
        let n = 1_600u64;
        let mut last = 0;
        for i in 0..n {
            let c = submit_ring_reap(&mut d, 0, read_cmd(i, i));
            last = last.max(c.complete_at);
        }
        // n commands / 16 channels * 1us = 100us.
        assert_eq!(last, 100_000);
    }
}
