//! The ring→device transport abstraction.
//!
//! The kernel's NVMe layer talks to the device through a [`Transport`]:
//! it enqueues commands, rings a doorbell, and later reaps completions.
//! Two implementations exist:
//!
//! - [`LocalTransport`] is the PCIe path the paper's testbed uses: a
//!   pass-through to [`NvmeDevice`]'s memory-mapped SQ/CQ rings. It
//!   preserves the pre-transport behaviour byte for byte — same ring
//!   semantics, same instants, same statistics.
//! - [`FabricTransport`] models an NVMe-oF initiator/target pair (the
//!   BPF-oF setting): each command is encoded into a *capsule* that pays
//!   a per-direction network latency (with jitter) before the target's
//!   local SQ/CQ rings service it, and each completion returns as a
//!   response capsule over the same wire. An in-flight-capsule window
//!   provides credit-style flow control with its own backpressure,
//!   independent of the target ring depth.
//!
//! The transport also understands *pushdown* submissions
//! ([`SubmitClass`]): a chain whose BPF program runs target-side crosses
//! the fabric once on submission, its dependent hops are recycled
//! entirely at the target, and only the terminal response capsule
//! ([`Transport::response_capsule`]) crosses back — the BPF-oF
//! round-trip elision this refactor exists to measure.

use std::collections::HashMap;

use bpfstor_sim::{LatencyDist, Nanos, SimRng};

use crate::device::{NvmeCommand, NvmeCompletion, NvmeDevice, QueueError};
use crate::QueuePairId;

/// How a submission relates to the fabric (ignored by the local path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitClass {
    /// Host-originated command whose completion returns to the host:
    /// over a fabric both directions cross the wire (command capsule
    /// out, response capsule back).
    Host,
    /// Host-originated first hop of a target-resident (pushdown) chain:
    /// the command capsule crosses the wire, but the completion is
    /// consumed by the target-side hook — no response capsule until the
    /// chain terminates.
    PushdownStart,
    /// Target-originated recycled resubmission of a pushdown chain:
    /// never touches the wire in either direction.
    TargetLocal,
}

/// Wire/flow-control model of one NVMe-oF connection.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// One-way host→target wire latency, sampled per command capsule.
    pub to_target: LatencyDist,
    /// One-way target→host wire latency, sampled per response capsule.
    pub to_host: LatencyDist,
    /// Fixed target-side capsule processing (decode, local ring write /
    /// response build) charged per wire crossing, in nanoseconds.
    pub target_proc_ns: Nanos,
    /// Maximum command capsules in flight per queue pair (submitted and
    /// not yet reaped by the host) — NVMe-oF's queue-granular credit
    /// window. Submissions beyond it are rejected as backpressure,
    /// counted in [`FabricStats::capsule_stalls`].
    pub inflight_cap: usize,
}

impl FabricConfig {
    /// A symmetric link: `one_way` ns each direction, uniform jitter of
    /// `±jitter` ns, with the default window and target processing cost.
    pub fn symmetric(one_way: Nanos, jitter: Nanos) -> Self {
        let dist = |mid: Nanos| {
            if jitter == 0 {
                LatencyDist::Constant(mid)
            } else {
                LatencyDist::Uniform(mid.saturating_sub(jitter), mid + jitter)
            }
        };
        FabricConfig {
            to_target: dist(one_way),
            to_host: dist(one_way),
            target_proc_ns: 500,
            inflight_cap: 32,
        }
    }

    /// Overrides the in-flight-capsule window.
    pub fn with_inflight_cap(mut self, cap: usize) -> Self {
        self.inflight_cap = cap.max(1);
        self
    }
}

impl Default for FabricConfig {
    /// A same-rack RDMA-class link: 15 µs ± 3 µs each way.
    fn default() -> Self {
        FabricConfig::symmetric(15_000, 3_000)
    }
}

/// Which transport a machine uses between its rings and the device.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TransportConfig {
    /// PCIe pass-through (the paper's testbed).
    #[default]
    Local,
    /// NVMe-oF initiator/target pair over a modelled network.
    Fabric(FabricConfig),
}

/// Fabric-side counters for one run (all zero on the local transport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Command capsules that crossed host→target.
    pub capsules_sent: u64,
    /// Response capsules that crossed target→host (per-command responses
    /// plus terminal pushdown responses).
    pub responses: u64,
    /// Target-local recycled submissions that never touched the wire.
    pub target_local: u64,
    /// Total one-way wire time accumulated over both directions,
    /// including the fixed target-side capsule processing.
    pub wire_ns: Nanos,
    /// Submissions declined because the in-flight-capsule window (not
    /// the target ring) was the binding constraint.
    pub capsule_stalls: u64,
    /// High-water mark of in-flight capsules on any queue pair.
    pub max_inflight: usize,
}

/// The ring→device hop, as the kernel's NVMe layer sees it.
///
/// Completion instants returned by [`Transport::ring_doorbell`] and
/// carried by reaped [`NvmeCompletion`]s are *host-visible* instants:
/// the local transport reports device completion times, the fabric
/// transport adds the wire (and marks the added non-device time in
/// [`NvmeCompletion::fabric_ns`]).
pub trait Transport {
    /// Number of queue pairs.
    fn nr_queues(&self) -> usize;

    /// Usable outstanding-command slots per queue pair (the tighter of
    /// the ring capacity and any fabric credit window).
    fn queue_capacity(&self) -> usize;

    /// Commands admitted on `qp` and not yet reaped by the host.
    fn outstanding(&self, qp: QueuePairId) -> usize;

    /// True when `qp` can admit `n` more commands right now.
    fn can_accept(&self, qp: QueuePairId, n: usize) -> bool;

    /// Counts a submission the driver declined to attempt because
    /// [`Transport::can_accept`] said no.
    fn record_rejection(&mut self);

    /// Enqueues a command without ringing the doorbell.
    ///
    /// # Errors
    ///
    /// [`QueueError::SubmissionFull`] at capacity,
    /// [`QueueError::NoSuchQueue`] for bad ids.
    fn submit(
        &mut self,
        qp: QueuePairId,
        cmd: NvmeCommand,
        class: SubmitClass,
    ) -> Result<(), QueueError>;

    /// Rings the doorbell at `now`: everything queued on `qp` is put in
    /// motion. Returns the host-visible completion instants (for the
    /// interrupt timer).
    ///
    /// # Errors
    ///
    /// [`QueueError::NoSuchQueue`] for bad ids.
    fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError>;

    /// Posts every completion whose host-visible instant has passed onto
    /// the host completion queue; returns how many were posted.
    fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize;

    /// Drains up to `max` posted completions at host-visible time `now`
    /// (the IRQ handler's or poller's reap), freeing their
    /// slots/credits and accounting each CQE's doorbell→reap gap in
    /// [`crate::DeviceStats::reap_lag_ns`].
    fn reap(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion>;

    /// Puts a terminal pushdown response capsule on the wire at `now`:
    /// returns `(host arrival instant, wire nanoseconds)` on a fabric,
    /// `None` on the local transport (nothing to cross).
    fn response_capsule(&mut self, now: Nanos) -> Option<(Nanos, Nanos)>;

    /// True for fabric transports.
    fn is_fabric(&self) -> bool;

    /// Fabric counters for the current run (zeroes on local).
    fn fabric_stats(&self) -> FabricStats;

    /// The backing device (target-side on a fabric).
    fn device(&self) -> &NvmeDevice;

    /// Mutable device access (store formatting, test setup).
    fn device_mut(&mut self) -> &mut NvmeDevice;

    /// Resets per-run timing/counter state (stored bytes untouched).
    fn reset_timing(&mut self);
}

/// PCIe pass-through: the pre-transport dispatch path, unchanged.
pub struct LocalTransport {
    dev: NvmeDevice,
}

impl LocalTransport {
    /// Wraps a device.
    pub fn new(dev: NvmeDevice) -> Self {
        LocalTransport { dev }
    }
}

impl Transport for LocalTransport {
    fn nr_queues(&self) -> usize {
        self.dev.nr_queues()
    }

    fn queue_capacity(&self) -> usize {
        self.dev.queue_capacity()
    }

    fn outstanding(&self, qp: QueuePairId) -> usize {
        self.dev.outstanding(qp)
    }

    fn can_accept(&self, qp: QueuePairId, n: usize) -> bool {
        self.dev.can_accept(qp, n)
    }

    fn record_rejection(&mut self) {
        self.dev.record_rejection();
    }

    fn submit(
        &mut self,
        qp: QueuePairId,
        cmd: NvmeCommand,
        _class: SubmitClass,
    ) -> Result<(), QueueError> {
        self.dev.submit(qp, cmd)
    }

    fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError> {
        self.dev.ring_doorbell(now, qp)
    }

    fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize {
        self.dev.post_ready(now, qp)
    }

    fn reap(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion> {
        self.dev.reap_at(now, qp, max)
    }

    fn response_capsule(&mut self, _now: Nanos) -> Option<(Nanos, Nanos)> {
        None
    }

    fn is_fabric(&self) -> bool {
        false
    }

    fn fabric_stats(&self) -> FabricStats {
        FabricStats::default()
    }

    fn device(&self) -> &NvmeDevice {
        &self.dev
    }

    fn device_mut(&mut self) -> &mut NvmeDevice {
        &mut self.dev
    }

    fn reset_timing(&mut self) {
        self.dev.reset_timing();
    }
}

/// Per-queue-pair initiator state.
#[derive(Default)]
struct InitiatorQueue {
    /// Commands enqueued by the host, awaiting the next doorbell.
    sq: Vec<(NvmeCommand, SubmitClass)>,
    /// Completions back at the host whose instant has not passed yet,
    /// kept sorted by host-visible `complete_at`.
    pending: Vec<NvmeCompletion>,
    /// Posted completions ready for the IRQ handler.
    ready: Vec<NvmeCompletion>,
    /// Admitted and not yet host-reaped (the capsule credit budget).
    outstanding: usize,
}

/// NVMe-oF initiator/target pair: command capsules cross a modelled
/// network, the target's real SQ/CQ rings service them, responses cross
/// back. Deterministic given the construction RNG.
pub struct FabricTransport {
    dev: NvmeDevice,
    cfg: FabricConfig,
    rng: SimRng,
    queues: Vec<InitiatorQueue>,
    stats: FabricStats,
}

impl FabricTransport {
    /// Builds the pair around a target-side device. A zero
    /// `inflight_cap` is clamped to one (a window that admits nothing
    /// would turn every I/O into a silent error).
    pub fn new(dev: NvmeDevice, mut cfg: FabricConfig, rng: SimRng) -> Self {
        cfg.inflight_cap = cfg.inflight_cap.max(1);
        let queues = (0..dev.nr_queues())
            .map(|_| InitiatorQueue::default())
            .collect();
        FabricTransport {
            dev,
            cfg,
            rng,
            queues,
            stats: FabricStats::default(),
        }
    }

    /// One wire crossing: fixed target-side processing plus a sampled
    /// one-way latency.
    fn crossing(&mut self, dist_to_target: bool) -> Nanos {
        let wire = if dist_to_target {
            self.cfg.to_target.sample(&mut self.rng)
        } else {
            self.cfg.to_host.sample(&mut self.rng)
        };
        let total = wire + self.cfg.target_proc_ns;
        self.stats.wire_ns += total;
        total
    }
}

impl Transport for FabricTransport {
    fn nr_queues(&self) -> usize {
        self.dev.nr_queues()
    }

    fn queue_capacity(&self) -> usize {
        self.dev.queue_capacity().min(self.cfg.inflight_cap)
    }

    fn outstanding(&self, qp: QueuePairId) -> usize {
        self.queues.get(qp).map_or(0, |q| q.outstanding)
    }

    fn can_accept(&self, qp: QueuePairId, n: usize) -> bool {
        self.queues
            .get(qp)
            .is_some_and(|q| q.outstanding + n <= self.queue_capacity())
    }

    fn record_rejection(&mut self) {
        // Attribute the stall to the capsule window when it is the
        // binding constraint (the ring alone would have accepted).
        if self.cfg.inflight_cap < self.dev.queue_capacity() {
            self.stats.capsule_stalls += 1;
        }
        self.dev.record_rejection();
    }

    fn submit(
        &mut self,
        qp: QueuePairId,
        cmd: NvmeCommand,
        class: SubmitClass,
    ) -> Result<(), QueueError> {
        let cap = self.queue_capacity();
        let q = self.queues.get_mut(qp).ok_or(QueueError::NoSuchQueue)?;
        if q.outstanding >= cap {
            self.record_rejection();
            return Err(QueueError::SubmissionFull);
        }
        q.outstanding += 1;
        self.stats.max_inflight = self.stats.max_inflight.max(q.outstanding);
        q.sq.push((cmd, class));
        Ok(())
    }

    fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError> {
        if qp >= self.queues.len() {
            return Err(QueueError::NoSuchQueue);
        }
        let batch = std::mem::take(&mut self.queues[qp].sq);
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        // Each command capsule crosses the wire on its own (NVMe-oF has
        // no doorbells on the fabric); jitter may reorder a batch, so
        // capsules hit the target's rings in arrival order.
        let mut meta: HashMap<u64, (Nanos, bool)> = HashMap::new(); // cid → (outbound, returns)
        let mut arrivals: Vec<(Nanos, NvmeCommand)> = Vec::with_capacity(batch.len());
        for (cmd, class) in batch {
            let outbound = match class {
                SubmitClass::TargetLocal => {
                    self.stats.target_local += 1;
                    0
                }
                SubmitClass::Host | SubmitClass::PushdownStart => {
                    self.stats.capsules_sent += 1;
                    self.crossing(true)
                }
            };
            meta.insert(cmd.cid, (outbound, matches!(class, SubmitClass::Host)));
            arrivals.push((now + outbound, cmd));
        }
        arrivals.sort_by_key(|(at, _)| *at);
        for (arrive, cmd) in arrivals {
            self.dev
                .submit(qp, cmd)
                .expect("initiator window never exceeds target ring capacity");
            self.dev
                .ring_doorbell(arrive, qp)
                .expect("queue pair exists");
        }
        // The target's service instants are fixed at its doorbell: drain
        // its completion ring eagerly and compute the host-visible
        // instants (response capsules pay the return wire; target-side
        // pushdown completions stay at their local instants).
        self.dev.post_ready(Nanos::MAX, qp);
        let mut times = Vec::new();
        for mut c in self.dev.reap(qp, usize::MAX) {
            let (outbound, returns) = meta.get(&c.cid).copied().unwrap_or((0, true));
            let back = if returns {
                self.stats.responses += 1;
                self.crossing(false)
            } else {
                0
            };
            c.fabric_ns = outbound + back;
            c.complete_at += back;
            times.push(c.complete_at);
            self.queues[qp].pending.push(c);
        }
        self.queues[qp].pending.sort_by_key(|c| c.complete_at);
        Ok(times)
    }

    fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize {
        let Some(q) = self.queues.get_mut(qp) else {
            return 0;
        };
        // `pending` is only appended to in ring_doorbell, which leaves
        // it sorted by host-visible instant.
        let take = q.pending.partition_point(|c| c.complete_at <= now);
        let mut posted: Vec<NvmeCompletion> = q.pending.drain(..take).collect();
        q.ready.append(&mut posted);
        let backlog = q.ready.len();
        self.dev.note_cq_backlog(backlog);
        take
    }

    fn reap(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion> {
        let Some(q) = self.queues.get_mut(qp) else {
            return Vec::new();
        };
        let take = q.ready.len().min(max);
        let out: Vec<NvmeCompletion> = q.ready.drain(..take).collect();
        q.outstanding -= out.len();
        // The initiator is where the host observes the gap: the target's
        // eager drain in `ring_doorbell` reaps at service time, so the
        // meaningful doorbell→reap lag is measured here.
        let lag: Nanos = out.iter().map(|c| now.saturating_sub(c.rang_at)).sum();
        self.dev.note_reap_lag(lag);
        out
    }

    fn response_capsule(&mut self, now: Nanos) -> Option<(Nanos, Nanos)> {
        self.stats.responses += 1;
        let wire = self.crossing(false);
        Some((now + wire, wire))
    }

    fn is_fabric(&self) -> bool {
        true
    }

    fn fabric_stats(&self) -> FabricStats {
        self.stats
    }

    fn device(&self) -> &NvmeDevice {
        &self.dev
    }

    fn device_mut(&mut self) -> &mut NvmeDevice {
        &mut self.dev
    }

    fn reset_timing(&mut self) {
        self.dev.reset_timing();
        for q in &mut self.queues {
            q.sq.clear();
            q.pending.clear();
            q.ready.clear();
            q.outstanding = 0;
        }
        self.stats = FabricStats::default();
    }
}

impl TransportConfig {
    /// Builds a transport around `dev`, drawing fabric randomness from
    /// `rng` (unused by the local path).
    pub fn build(&self, dev: NvmeDevice, rng: SimRng) -> Box<dyn Transport> {
        match self {
            TransportConfig::Local => Box::new(LocalTransport::new(dev)),
            TransportConfig::Fabric(fc) => Box::new(FabricTransport::new(dev, fc.clone(), rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NvmeOp;
    use crate::profile::{DeviceClass, DeviceProfile};

    const SVC: Nanos = 3_000;

    fn dev(depth: usize) -> NvmeDevice {
        let profile = DeviceProfile {
            name: "test",
            class: DeviceClass::NvmGen2,
            read_latency: LatencyDist::Constant(SVC),
            write_latency: LatencyDist::Constant(SVC),
            channels: 4,
            queue_depth: depth,
        };
        NvmeDevice::new(profile, 1, SimRng::seed(7))
    }

    fn read_cmd(cid: u64) -> NvmeCommand {
        NvmeCommand {
            cid,
            op: NvmeOp::Read { slba: cid, nlb: 1 },
        }
    }

    fn link(one_way: Nanos) -> FabricConfig {
        FabricConfig {
            to_target: LatencyDist::Constant(one_way),
            to_host: LatencyDist::Constant(one_way),
            target_proc_ns: 0,
            inflight_cap: 32,
        }
    }

    fn fabric(one_way: Nanos) -> FabricTransport {
        FabricTransport::new(dev(8), link(one_way), SimRng::seed(1))
    }

    #[test]
    fn local_transport_is_a_pass_through() {
        let mut t = LocalTransport::new(dev(8));
        let mut d = dev(8);
        for cid in 0..3 {
            t.submit(0, read_cmd(cid), SubmitClass::Host).expect("t");
            d.submit(0, read_cmd(cid)).expect("d");
        }
        let tt = t.ring_doorbell(100, 0).expect("t bell");
        let dt = d.ring_doorbell(100, 0).expect("d bell");
        assert_eq!(tt, dt, "identical completion instants");
        let at = *tt.last().expect("times");
        assert_eq!(t.post_ready(at, 0), d.post_ready(at, 0));
        let tc = t.reap(at, 0, usize::MAX);
        let dc = d.reap_at(at, 0, usize::MAX);
        assert_eq!(tc.len(), dc.len());
        for (a, b) in tc.iter().zip(&dc) {
            assert_eq!(
                (a.cid, a.complete_at, a.fabric_ns),
                (b.cid, b.complete_at, 0)
            );
        }
        assert_eq!(t.device().stats(), d.stats());
        assert_eq!(t.fabric_stats(), FabricStats::default());
        assert!(t.response_capsule(0).is_none());
    }

    #[test]
    fn host_class_pays_both_directions() {
        let mut t = fabric(10_000);
        t.submit(0, read_cmd(1), SubmitClass::Host).expect("submit");
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times, vec![10_000 + SVC + 10_000]);
        assert_eq!(t.post_ready(23_000, 0), 1);
        let c = t.reap(23_000, 0, usize::MAX).pop().expect("cqe");
        assert_eq!(c.fabric_ns, 20_000);
        assert_eq!(c.complete_at, 23_000);
        let s = t.fabric_stats();
        assert_eq!((s.capsules_sent, s.responses, s.target_local), (1, 1, 0));
        assert_eq!(s.wire_ns, 20_000);
    }

    #[test]
    fn pushdown_start_pays_outbound_only() {
        let mut t = fabric(10_000);
        t.submit(0, read_cmd(1), SubmitClass::PushdownStart)
            .expect("submit");
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times, vec![10_000 + SVC], "completion stays target-side");
        t.post_ready(13_000, 0);
        let c = t.reap(13_000, 0, usize::MAX).pop().expect("cqe");
        assert_eq!(c.fabric_ns, 10_000);
        let s = t.fabric_stats();
        assert_eq!((s.capsules_sent, s.responses), (1, 0));
    }

    #[test]
    fn target_local_never_touches_the_wire() {
        let mut t = fabric(10_000);
        t.submit(0, read_cmd(1), SubmitClass::TargetLocal)
            .expect("submit");
        let times = t.ring_doorbell(500, 0).expect("bell");
        assert_eq!(times, vec![500 + SVC]);
        t.post_ready(500 + SVC, 0);
        let c = t.reap(500 + SVC, 0, usize::MAX).pop().expect("cqe");
        assert_eq!(c.fabric_ns, 0);
        let s = t.fabric_stats();
        assert_eq!((s.capsules_sent, s.target_local, s.wire_ns), (0, 1, 0));
    }

    #[test]
    fn response_capsule_crosses_back() {
        let mut t = fabric(7_000);
        let (arrive, wire) = t.response_capsule(1_000).expect("fabric");
        assert_eq!((arrive, wire), (8_000, 7_000));
        assert_eq!(t.fabric_stats().responses, 1);
    }

    #[test]
    fn capsule_window_backpressures_before_the_ring() {
        let mut t = FabricTransport::new(dev(8), link(1_000).with_inflight_cap(2), SimRng::seed(2));
        assert_eq!(t.queue_capacity(), 2, "window tighter than the ring");
        t.submit(0, read_cmd(1), SubmitClass::Host).expect("one");
        t.submit(0, read_cmd(2), SubmitClass::Host).expect("two");
        assert!(!t.can_accept(0, 1));
        assert_eq!(
            t.submit(0, read_cmd(3), SubmitClass::Host).unwrap_err(),
            QueueError::SubmissionFull
        );
        assert_eq!(t.fabric_stats().capsule_stalls, 1);
        assert_eq!(t.fabric_stats().max_inflight, 2);
        // Credits free at host reap, not at target completion.
        t.ring_doorbell(0, 0).expect("bell");
        t.post_ready(Nanos::MAX, 0);
        assert!(
            !t.can_accept(0, 1),
            "posted but unreaped still holds credits"
        );
        assert_eq!(t.reap(10_000, 0, usize::MAX).len(), 2);
        assert!(t.can_accept(0, 2));
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let cfg = FabricConfig {
            to_target: LatencyDist::Uniform(1_000, 50_000),
            to_host: LatencyDist::Uniform(1_000, 50_000),
            target_proc_ns: 250,
            inflight_cap: 32,
        };
        let mut t = FabricTransport::new(dev(8), cfg, SimRng::seed(99));
        for cid in 0..6 {
            t.submit(0, read_cmd(cid), SubmitClass::Host).expect("fits");
        }
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times.len(), 6);
        let horizon = *times.iter().max().expect("nonempty");
        t.post_ready(horizon, 0);
        let cqes = t.reap(horizon, 0, usize::MAX);
        let mut cids: Vec<u64> = cqes.iter().map(|c| c.cid).collect();
        cids.sort_unstable();
        assert_eq!(cids, vec![0, 1, 2, 3, 4, 5], "exactly one CQE per SQE");
        assert!(
            cqes.windows(2)
                .all(|w| w[0].complete_at <= w[1].complete_at),
            "host reaps in completion order"
        );
        assert_eq!(t.outstanding(0), 0);
    }

    #[test]
    fn reset_timing_clears_fabric_state() {
        let mut t = fabric(5_000);
        t.submit(0, read_cmd(1), SubmitClass::Host).expect("submit");
        t.ring_doorbell(0, 0).expect("bell");
        t.reset_timing();
        assert_eq!(t.outstanding(0), 0);
        assert_eq!(t.fabric_stats(), FabricStats::default());
        assert_eq!(t.post_ready(Nanos::MAX, 0), 0, "no stale completions");
    }
}
