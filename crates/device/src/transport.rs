//! The ring→device transport abstraction.
//!
//! The kernel's NVMe layer talks to the device through a [`Transport`]:
//! it enqueues commands, rings a doorbell, and later reaps completions.
//! Two implementations exist:
//!
//! - [`LocalTransport`] is the PCIe path the paper's testbed uses: a
//!   pass-through to [`NvmeDevice`]'s memory-mapped SQ/CQ rings. It
//!   preserves the pre-transport behaviour byte for byte — same ring
//!   semantics, same instants, same statistics.
//! - [`FabricTransport`] models an NVMe-oF target shared by one or more
//!   initiators (the BPF-oF setting): each command is encoded into a
//!   *capsule* that pays a per-direction network latency (with jitter)
//!   before the target's local SQ/CQ rings service it, and each
//!   completion returns as a response capsule over the same wire. An
//!   in-flight-capsule window provides credit-style flow control with
//!   its own backpressure, independent of the target ring depth.
//!
//! The transport also understands *pushdown* submissions
//! ([`SubmitClass`]): a chain whose BPF program runs target-side crosses
//! the fabric once on submission, its dependent hops are recycled
//! entirely at the target, and only the terminal response capsule
//! ([`Transport::response_capsule`]) crosses back — the BPF-oF
//! round-trip elision this refactor exists to measure.
//!
//! # Multi-initiator contention
//!
//! With [`FabricConfig::initiators`] > 1 the target is shared: every
//! submission names the initiator it came from, and three optional
//! mechanisms model the contention (each defaults *off*, so existing
//! single-initiator configurations reproduce their instants bit for
//! bit):
//!
//! - **Per-initiator credit windows** ([`FabricConfig::initiator_window`]):
//!   each initiator may hold at most this many capsules in flight across
//!   the connection, on top of the shared per-queue-pair
//!   [`FabricConfig::inflight_cap`].
//! - **Target-side admission** ([`FabricConfig::admit_ns`]): arriving
//!   command capsules serialize through one admission server; capsules
//!   queued behind it are released by weighted round-robin between
//!   initiators ([`FabricConfig::initiator_weights`]). Target-local
//!   (pushdown-recycled) submissions never queue here — they are already
//!   on the target.
//! - **Congestion and loss**: wire latency grows with the number of
//!   capsules the target already holds
//!   ([`FabricConfig::congestion_knee`] /
//!   [`FabricConfig::congestion_ns_per_capsule`]), and each crossing may
//!   be lost with [`FabricConfig::loss_prob`], paying
//!   [`FabricConfig::retransmit_timeout_ns`] per retransmission; a
//!   retransmitted capsule whose "lost" original was merely late is
//!   delivered twice and suppressed by the target's command-id dedup
//!   ([`FabricStats::dups_suppressed`]).
//!
//! Capsules are sized from the command they carry
//! ([`FabricStats::bytes_tx`] / [`FabricStats::bytes_rx`]): a write
//! capsule hauls its in-capsule data payload across the wire and pays
//! [`FabricConfig::wire_ns_per_kb`] of serialization per KiB, where a
//! read command is a fixed-size header. Read *response* payloads are
//! counted in `bytes_rx` but add no modelled latency (the return
//! direction is calibrated into the sampled wire distribution).

use std::collections::HashMap;

use bpfstor_sim::{LatencyDist, Nanos, SimRng};

use crate::device::{NvmeCommand, NvmeCompletion, NvmeDevice, NvmeOp, QueueError};
use crate::QueuePairId;

/// Fixed NVMe-oF command-capsule header size in bytes (SQE + ICD header).
const CMD_CAPSULE_HDR: u64 = 64;
/// Fixed response-capsule size in bytes (CQE).
const RSP_CAPSULE_HDR: u64 = 16;
/// Stride-scheduling constant for the weighted round-robin admission
/// pick (divided by the initiator's weight per admitted capsule).
const WRR_STRIDE: u64 = 1 << 16;

/// How a submission relates to the fabric (ignored by the local path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitClass {
    /// Host-originated command whose completion returns to the host:
    /// over a fabric both directions cross the wire (command capsule
    /// out, response capsule back).
    Host,
    /// Host-originated first hop of a target-resident (pushdown) chain:
    /// the command capsule crosses the wire, but the completion is
    /// consumed by the target-side hook — no response capsule until the
    /// chain terminates.
    PushdownStart,
    /// Target-originated recycled resubmission of a pushdown chain:
    /// never touches the wire in either direction.
    TargetLocal,
}

/// Wire/flow-control model of one NVMe-oF connection.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// One-way host→target wire latency, sampled per command capsule.
    pub to_target: LatencyDist,
    /// One-way target→host wire latency, sampled per response capsule.
    pub to_host: LatencyDist,
    /// Fixed target-side capsule processing (decode, local ring write /
    /// response build) charged per wire crossing, in nanoseconds.
    pub target_proc_ns: Nanos,
    /// Maximum command capsules in flight per queue pair (submitted and
    /// not yet reaped by the host) — NVMe-oF's queue-granular credit
    /// window. Submissions beyond it are rejected as backpressure,
    /// counted in [`FabricStats::capsule_stalls`].
    pub inflight_cap: usize,
    /// Number of initiators sharing this target (default 1). Submissions
    /// are attributed to `initiator % initiators`.
    pub initiators: usize,
    /// Optional per-initiator in-flight-capsule budget across the whole
    /// connection, on top of the per-queue-pair window (default: none).
    pub initiator_window: Option<usize>,
    /// Weighted round-robin admission weights, indexed by initiator;
    /// missing or zero entries count as weight 1 (default: empty, i.e.
    /// equal weights).
    pub initiator_weights: Vec<u32>,
    /// Target-side admission service time per arriving command capsule.
    /// Zero (the default) disables the admission queue entirely —
    /// capsules hit the target rings at their wire arrival instants.
    pub admit_ns: Nanos,
    /// In-flight capsule count the congestion model tolerates for free
    /// (only meaningful with a nonzero
    /// [`FabricConfig::congestion_ns_per_capsule`]).
    pub congestion_knee: usize,
    /// Added one-way wire latency per in-flight capsule beyond the
    /// knee — the queue-depth-dependent congestion signal. Zero (the
    /// default) disables congestion.
    pub congestion_ns_per_capsule: Nanos,
    /// Serialization latency per KiB of in-capsule data payload (write
    /// capsules). The default 320 ns/KiB models a 25 Gb/s link; read
    /// command capsules carry no payload and are unaffected.
    pub wire_ns_per_kb: Nanos,
    /// Probability that one wire crossing is lost and must be
    /// retransmitted after [`FabricConfig::retransmit_timeout_ns`].
    /// Zero (the default) draws no randomness at all, preserving the
    /// RNG stream of loss-free configurations.
    pub loss_prob: f64,
    /// Retransmission timeout per lost crossing.
    pub retransmit_timeout_ns: Nanos,
    /// Probability that a retransmitted capsule's "lost" original was
    /// merely delayed: both copies arrive and the target suppresses the
    /// duplicate ([`FabricStats::dups_suppressed`]). Only drawn when a
    /// retransmission actually happened.
    pub dup_prob: f64,
}

impl FabricConfig {
    /// A symmetric link: `one_way` ns each direction, uniform jitter of
    /// `±jitter` ns, with the default window and target processing cost.
    pub fn symmetric(one_way: Nanos, jitter: Nanos) -> Self {
        let dist = |mid: Nanos| {
            if jitter == 0 {
                LatencyDist::Constant(mid)
            } else {
                LatencyDist::Uniform(mid.saturating_sub(jitter), mid + jitter)
            }
        };
        FabricConfig {
            to_target: dist(one_way),
            to_host: dist(one_way),
            target_proc_ns: 500,
            inflight_cap: 32,
            ..FabricConfig::contention_defaults()
        }
    }

    /// The contention/congestion knobs at their do-nothing defaults
    /// (single initiator, no windows, no admission, no loss). Split out
    /// so explicit `FabricConfig { .. }` literals can splat it.
    pub fn contention_defaults() -> Self {
        FabricConfig {
            to_target: LatencyDist::Constant(0),
            to_host: LatencyDist::Constant(0),
            target_proc_ns: 0,
            inflight_cap: 32,
            initiators: 1,
            initiator_window: None,
            initiator_weights: Vec::new(),
            admit_ns: 0,
            congestion_knee: 0,
            congestion_ns_per_capsule: 0,
            wire_ns_per_kb: 320,
            loss_prob: 0.0,
            retransmit_timeout_ns: 100_000,
            dup_prob: 0.0,
        }
    }

    /// Overrides the in-flight-capsule window.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero — a window that admits nothing would turn
    /// every I/O into a silent error (the same contract as
    /// `irq_coalescing`'s zero-depth rejection).
    pub fn with_inflight_cap(mut self, cap: usize) -> Self {
        assert!(
            cap >= 1,
            "inflight_cap 0 can never admit a capsule; use 1 for single-command windows"
        );
        self.inflight_cap = cap;
        self
    }

    /// Sets the number of initiators sharing the target.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_initiators(mut self, n: usize) -> Self {
        assert!(n >= 1, "a fabric needs at least one initiator");
        self.initiators = n;
        self
    }

    /// Sets the per-initiator in-flight-capsule budget.
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero (same contract as
    /// [`FabricConfig::with_inflight_cap`]).
    pub fn with_initiator_window(mut self, w: usize) -> Self {
        assert!(
            w >= 1,
            "initiator_window 0 can never admit a capsule; use 1 for single-command windows"
        );
        self.initiator_window = Some(w);
        self
    }

    /// Sets the weighted round-robin admission weights per initiator.
    pub fn with_initiator_weights(mut self, weights: Vec<u32>) -> Self {
        self.initiator_weights = weights;
        self
    }

    /// Enables the target-side admission queue with the given service
    /// time per command capsule.
    pub fn with_admit_ns(mut self, ns: Nanos) -> Self {
        self.admit_ns = ns;
        self
    }

    /// Enables queue-depth-dependent congestion: `per_capsule_ns` of
    /// added one-way latency per in-flight capsule beyond `knee`.
    pub fn with_congestion(mut self, knee: usize, per_capsule_ns: Nanos) -> Self {
        self.congestion_knee = knee;
        self.congestion_ns_per_capsule = per_capsule_ns;
        self
    }

    /// Enables probabilistic capsule loss with timeout/retransmit and
    /// duplicate-delivery suppression.
    pub fn with_loss(mut self, loss_prob: f64, timeout_ns: Nanos, dup_prob: f64) -> Self {
        self.loss_prob = loss_prob;
        self.retransmit_timeout_ns = timeout_ns.max(1);
        self.dup_prob = dup_prob;
        self
    }
}

impl Default for FabricConfig {
    /// A same-rack RDMA-class link: 15 µs ± 3 µs each way.
    fn default() -> Self {
        FabricConfig::symmetric(15_000, 3_000)
    }
}

/// Which transport a machine uses between its rings and the device.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TransportConfig {
    /// PCIe pass-through (the paper's testbed).
    #[default]
    Local,
    /// NVMe-oF initiator(s)/target over a modelled network.
    Fabric(FabricConfig),
}

/// Fabric-side counters for one run (all zero on the local transport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Command capsules that crossed host→target.
    pub capsules_sent: u64,
    /// Response capsules that crossed target→host (per-command responses
    /// plus terminal pushdown responses).
    pub responses: u64,
    /// Target-local recycled submissions that never touched the wire.
    pub target_local: u64,
    /// Total one-way wire time accumulated over both directions,
    /// including the fixed target-side capsule processing and any
    /// congestion/retransmission delay.
    pub wire_ns: Nanos,
    /// Submissions declined because a capsule window (per queue pair or
    /// per initiator — not the target ring) was the binding constraint.
    pub capsule_stalls: u64,
    /// High-water mark of in-flight capsules on any queue pair.
    pub max_inflight: usize,
    /// Bytes of command capsules put on the wire (headers plus
    /// in-capsule write payloads).
    pub bytes_tx: u64,
    /// Bytes of response capsules received (headers plus read payloads).
    pub bytes_rx: u64,
    /// Wire crossings lost and retransmitted.
    pub lost: u64,
    /// Retransmissions sent (equals `lost`; kept separate so asymmetric
    /// policies can diverge later).
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by the target's command-id dedup
    /// (a retransmitted capsule whose original was late, not lost).
    pub dups_suppressed: u64,
    /// Total time command capsules spent queued in target-side
    /// admission beyond their wire arrival.
    pub admit_wait_ns: Nanos,
}

/// Per-initiator fabric counters ([`Transport::initiator_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InitiatorStats {
    /// Command capsules this initiator put on the wire.
    pub capsules_sent: u64,
    /// Response capsules returned to this initiator.
    pub responses: u64,
    /// Retransmissions on this initiator's crossings (both directions).
    pub retransmits: u64,
    /// Command-capsule bytes this initiator transmitted.
    pub bytes_tx: u64,
    /// Submissions declined on this initiator's capsule windows.
    pub capsule_stalls: u64,
}

/// The ring→device hop, as the kernel's NVMe layer sees it.
///
/// Completion instants returned by [`Transport::ring_doorbell`] and
/// carried by reaped [`NvmeCompletion`]s are *host-visible* instants:
/// the local transport reports device completion times, the fabric
/// transport adds the wire (and marks the added non-device time in
/// [`NvmeCompletion::fabric_ns`]).
///
/// `initiator` parameters attribute work to one of the fabric's
/// initiators (per-initiator credit windows, weighted admission,
/// per-initiator stats); the local transport ignores them.
pub trait Transport {
    /// Number of queue pairs.
    fn nr_queues(&self) -> usize;

    /// Usable outstanding-command slots per queue pair (the tighter of
    /// the ring capacity and any fabric credit window).
    fn queue_capacity(&self) -> usize;

    /// Commands admitted on `qp` and not yet reaped by the host.
    fn outstanding(&self, qp: QueuePairId) -> usize;

    /// True when `qp` can admit `n` more commands from `initiator`
    /// right now. `class` matters on a fabric: per-initiator credit
    /// windows model capsule flow control on the wire, so
    /// [`SubmitClass::TargetLocal`] submissions (pushdown flush chases,
    /// target-side resubmissions) bypass the window and only contend
    /// for target ring slots.
    fn can_accept(&self, qp: QueuePairId, n: usize, initiator: u32, class: SubmitClass) -> bool;

    /// Counts a submission the driver declined to attempt because
    /// [`Transport::can_accept`] said no.
    fn record_rejection(&mut self, initiator: u32);

    /// Enqueues a command from `initiator` without ringing the doorbell.
    ///
    /// # Errors
    ///
    /// [`QueueError::SubmissionFull`] at capacity,
    /// [`QueueError::NoSuchQueue`] for bad ids.
    fn submit(
        &mut self,
        qp: QueuePairId,
        cmd: NvmeCommand,
        class: SubmitClass,
        initiator: u32,
    ) -> Result<(), QueueError>;

    /// Rings the doorbell at `now`: everything queued on `qp` is put in
    /// motion. Returns the host-visible completion instants (for the
    /// interrupt timer).
    ///
    /// # Errors
    ///
    /// [`QueueError::NoSuchQueue`] for bad ids.
    fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError>;

    /// Posts every completion whose host-visible instant has passed onto
    /// the host completion queue; returns how many were posted.
    fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize;

    /// Drains up to `max` posted completions at host-visible time `now`
    /// (the IRQ handler's or poller's reap), freeing their
    /// slots/credits and accounting each CQE's doorbell→reap gap in
    /// [`crate::DeviceStats::reap_lag_ns`].
    fn reap(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion>;

    /// Puts a terminal pushdown response capsule for `initiator` on the
    /// wire at `now`: returns `(host arrival instant, wire nanoseconds)`
    /// on a fabric, `None` on the local transport (nothing to cross).
    fn response_capsule(&mut self, now: Nanos, initiator: u32) -> Option<(Nanos, Nanos)>;

    /// True for fabric transports.
    fn is_fabric(&self) -> bool;

    /// Fabric counters for the current run (zeroes on local).
    fn fabric_stats(&self) -> FabricStats;

    /// Per-initiator fabric counters (empty on local).
    fn initiator_stats(&self) -> Vec<InitiatorStats>;

    /// The backing device (target-side on a fabric).
    fn device(&self) -> &NvmeDevice;

    /// Mutable device access (store formatting, test setup).
    fn device_mut(&mut self) -> &mut NvmeDevice;

    /// Resets per-run timing/counter state (stored bytes untouched).
    fn reset_timing(&mut self);
}

/// PCIe pass-through: the pre-transport dispatch path, unchanged.
pub struct LocalTransport {
    dev: NvmeDevice,
}

impl LocalTransport {
    /// Wraps a device.
    pub fn new(dev: NvmeDevice) -> Self {
        LocalTransport { dev }
    }
}

impl Transport for LocalTransport {
    fn nr_queues(&self) -> usize {
        self.dev.nr_queues()
    }

    fn queue_capacity(&self) -> usize {
        self.dev.queue_capacity()
    }

    fn outstanding(&self, qp: QueuePairId) -> usize {
        self.dev.outstanding(qp)
    }

    fn can_accept(&self, qp: QueuePairId, n: usize, _initiator: u32, _class: SubmitClass) -> bool {
        self.dev.can_accept(qp, n)
    }

    fn record_rejection(&mut self, _initiator: u32) {
        self.dev.record_rejection();
    }

    fn submit(
        &mut self,
        qp: QueuePairId,
        cmd: NvmeCommand,
        _class: SubmitClass,
        _initiator: u32,
    ) -> Result<(), QueueError> {
        self.dev.submit(qp, cmd)
    }

    fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError> {
        self.dev.ring_doorbell(now, qp)
    }

    fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize {
        self.dev.post_ready(now, qp)
    }

    fn reap(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion> {
        self.dev.reap_at(now, qp, max)
    }

    fn response_capsule(&mut self, _now: Nanos, _initiator: u32) -> Option<(Nanos, Nanos)> {
        None
    }

    fn is_fabric(&self) -> bool {
        false
    }

    fn fabric_stats(&self) -> FabricStats {
        FabricStats::default()
    }

    fn initiator_stats(&self) -> Vec<InitiatorStats> {
        Vec::new()
    }

    fn device(&self) -> &NvmeDevice {
        &self.dev
    }

    fn device_mut(&mut self) -> &mut NvmeDevice {
        &mut self.dev
    }

    fn reset_timing(&mut self) {
        self.dev.reset_timing();
    }
}

/// Per-queue-pair initiator-side state.
#[derive(Default)]
struct InitiatorQueue {
    /// Commands enqueued by the host, awaiting the next doorbell.
    sq: Vec<(NvmeCommand, SubmitClass, usize)>,
    /// Completions back at the host whose instant has not passed yet,
    /// kept sorted by host-visible `complete_at`.
    pending: Vec<NvmeCompletion>,
    /// Posted completions ready for the IRQ handler.
    ready: Vec<NvmeCompletion>,
    /// Admitted and not yet host-reaped (the capsule credit budget).
    outstanding: usize,
}

/// Per-initiator connection state.
#[derive(Default)]
struct InitState {
    /// Capsules this initiator holds in flight across all queue pairs.
    outstanding: usize,
    /// Stride-scheduling pass value for weighted round-robin admission.
    wrr_pass: u64,
    stats: InitiatorStats,
}

/// NVMe-oF initiator(s)/target: command capsules cross a modelled
/// network, the target's real SQ/CQ rings service them, responses cross
/// back. Deterministic given the construction RNG.
pub struct FabricTransport {
    dev: NvmeDevice,
    cfg: FabricConfig,
    rng: SimRng,
    queues: Vec<InitiatorQueue>,
    inits: Vec<InitState>,
    /// cid → owning initiator, for commands in flight.
    init_of: HashMap<u64, usize>,
    /// Instant the target's admission server frees up (admission mode).
    admit_free_at: Nanos,
    stats: FabricStats,
}

/// Command-capsule size: fixed header plus any in-capsule data payload.
fn capsule_bytes(op: &NvmeOp) -> u64 {
    CMD_CAPSULE_HDR
        + match op {
            NvmeOp::Write { data, .. } => data.len() as u64,
            NvmeOp::Read { .. } | NvmeOp::Flush => 0,
        }
}

impl FabricTransport {
    /// Builds the target around a device shared by `cfg.initiators`
    /// initiators.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.inflight_cap`, `cfg.initiators`, or a configured
    /// `cfg.initiator_window` is zero — windows that admit nothing turn
    /// every I/O into a silent error.
    pub fn new(dev: NvmeDevice, cfg: FabricConfig, rng: SimRng) -> Self {
        assert!(
            cfg.inflight_cap >= 1,
            "inflight_cap 0 can never admit a capsule; use 1 for single-command windows"
        );
        assert!(cfg.initiators >= 1, "a fabric needs at least one initiator");
        assert!(
            cfg.initiator_window != Some(0),
            "initiator_window 0 can never admit a capsule; use 1 for single-command windows"
        );
        let queues = (0..dev.nr_queues())
            .map(|_| InitiatorQueue::default())
            .collect();
        let inits = (0..cfg.initiators).map(|_| InitState::default()).collect();
        FabricTransport {
            dev,
            cfg,
            rng,
            queues,
            inits,
            init_of: HashMap::new(),
            admit_free_at: 0,
            stats: FabricStats::default(),
        }
    }

    fn init_idx(&self, initiator: u32) -> usize {
        initiator as usize % self.inits.len()
    }

    /// The admission weight of one initiator (missing/zero entries are
    /// weight 1).
    fn weight(&self, init: usize) -> u64 {
        u64::from(
            self.cfg
                .initiator_weights
                .get(init)
                .copied()
                .filter(|&w| w > 0)
                .unwrap_or(1),
        )
    }

    /// Queue-depth-dependent congestion: added one-way latency once the
    /// target holds more capsules than the knee tolerates.
    fn congestion_penalty(&self) -> Nanos {
        if self.cfg.congestion_ns_per_capsule == 0 {
            return 0;
        }
        let inflight: usize = self.queues.iter().map(|q| q.outstanding).sum();
        self.cfg.congestion_ns_per_capsule
            * inflight.saturating_sub(self.cfg.congestion_knee) as u64
    }

    /// One wire crossing: fixed target-side processing, a sampled
    /// one-way latency, payload serialization, congestion, and (when
    /// configured) loss with timeout/retransmit. `payload_bytes` is the
    /// in-capsule data hauled in this direction. A zero `loss_prob`
    /// draws exactly one sample, preserving loss-free RNG streams.
    fn crossing(&mut self, dist_to_target: bool, payload_bytes: u64, init: usize) -> Nanos {
        let serialize = payload_bytes * self.cfg.wire_ns_per_kb / 1024;
        let congest = self.congestion_penalty();
        let mut total = self.cfg.target_proc_ns + serialize + congest;
        loop {
            let wire = if dist_to_target {
                self.cfg.to_target.sample(&mut self.rng)
            } else {
                self.cfg.to_host.sample(&mut self.rng)
            };
            if self.cfg.loss_prob > 0.0 && self.rng.chance(self.cfg.loss_prob) {
                // Lost: wait out the timeout, then retransmit (the
                // retransmitted copy re-samples the wire). A "lost"
                // original that was merely late also arrives and is
                // dropped by the target's command-id dedup.
                self.stats.lost += 1;
                self.stats.retransmits += 1;
                self.inits[init].stats.retransmits += 1;
                total += self.cfg.retransmit_timeout_ns.max(1);
                if self.cfg.dup_prob > 0.0 && self.rng.chance(self.cfg.dup_prob) {
                    self.stats.dups_suppressed += 1;
                }
                continue;
            }
            total += wire;
            break;
        }
        self.stats.wire_ns += total;
        total
    }

    /// Runs one doorbell batch's command capsules through the
    /// target-side admission server: a serial server (`admit_ns` per
    /// capsule) releasing queued capsules by weighted round-robin
    /// between initiators. Returns `(admit instant, command)` in
    /// admission order. Entries are `(wire arrival, initiator, cmd)`.
    fn admit(
        &mut self,
        mut waiting: Vec<(Nanos, usize, NvmeCommand)>,
    ) -> Vec<(Nanos, NvmeCommand)> {
        let mut out = Vec::with_capacity(waiting.len());
        while !waiting.is_empty() {
            let earliest = waiting.iter().map(|(at, ..)| *at).min().expect("nonempty");
            let t = self.admit_free_at.max(earliest);
            // Everyone already arrived by `t` contends; weighted
            // round-robin (stride scheduling) picks the winner, with
            // arrival order breaking ties within one initiator.
            let pick = waiting
                .iter()
                .enumerate()
                .filter(|(_, (at, ..))| *at <= t)
                .min_by_key(|(pos, (at, init, _))| (self.inits[*init].wrr_pass, *at, *pos))
                .map(|(pos, _)| pos)
                .expect("at least the earliest arrival qualifies");
            let (arrive, init, cmd) = waiting.remove(pick);
            self.inits[init].wrr_pass += WRR_STRIDE / self.weight(init);
            self.stats.admit_wait_ns += t.saturating_sub(arrive);
            self.admit_free_at = t + self.cfg.admit_ns;
            out.push((t, cmd));
        }
        out
    }
}

impl Transport for FabricTransport {
    fn nr_queues(&self) -> usize {
        self.dev.nr_queues()
    }

    fn queue_capacity(&self) -> usize {
        self.dev.queue_capacity().min(self.cfg.inflight_cap)
    }

    fn outstanding(&self, qp: QueuePairId) -> usize {
        self.queues.get(qp).map_or(0, |q| q.outstanding)
    }

    fn can_accept(&self, qp: QueuePairId, n: usize, initiator: u32, class: SubmitClass) -> bool {
        let Some(q) = self.queues.get(qp) else {
            return false;
        };
        if q.outstanding + n > self.queue_capacity() {
            return false;
        }
        // Target-local submissions never cross the wire, so they hold
        // no capsule credits — only the target ring bounds them.
        if class == SubmitClass::TargetLocal {
            return true;
        }
        match self.cfg.initiator_window {
            Some(w) => self.inits[self.init_idx(initiator)].outstanding + n <= w,
            None => true,
        }
    }

    fn record_rejection(&mut self, initiator: u32) {
        // Attribute the stall to a capsule window when one is the
        // binding constraint (the ring alone would have accepted).
        if self.cfg.inflight_cap < self.dev.queue_capacity() || self.cfg.initiator_window.is_some()
        {
            self.stats.capsule_stalls += 1;
            let idx = self.init_idx(initiator);
            self.inits[idx].stats.capsule_stalls += 1;
        }
        self.dev.record_rejection();
    }

    fn submit(
        &mut self,
        qp: QueuePairId,
        cmd: NvmeCommand,
        class: SubmitClass,
        initiator: u32,
    ) -> Result<(), QueueError> {
        let cap = self.queue_capacity();
        let idx = self.init_idx(initiator);
        if self.queues.get(qp).is_none() {
            return Err(QueueError::NoSuchQueue);
        }
        let holds_credit = class != SubmitClass::TargetLocal;
        let window_full = holds_credit
            && matches!(self.cfg.initiator_window, Some(w) if self.inits[idx].outstanding >= w);
        if self.queues[qp].outstanding >= cap || window_full {
            self.record_rejection(initiator);
            return Err(QueueError::SubmissionFull);
        }
        let q = &mut self.queues[qp];
        q.outstanding += 1;
        self.stats.max_inflight = self.stats.max_inflight.max(q.outstanding);
        if holds_credit {
            self.inits[idx].outstanding += 1;
            self.init_of.insert(cmd.cid, idx);
        }
        q.sq.push((cmd, class, idx));
        Ok(())
    }

    fn ring_doorbell(&mut self, now: Nanos, qp: QueuePairId) -> Result<Vec<Nanos>, QueueError> {
        if qp >= self.queues.len() {
            return Err(QueueError::NoSuchQueue);
        }
        let batch = std::mem::take(&mut self.queues[qp].sq);
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        // Each command capsule crosses the wire on its own (NVMe-oF has
        // no doorbells on the fabric); jitter may reorder a batch, so
        // capsules hit the target's rings in arrival order.
        let mut meta: HashMap<u64, (Nanos, bool, usize)> = HashMap::new(); // cid → (outbound, returns, init)
        let mut direct: Vec<(Nanos, NvmeCommand)> = Vec::new();
        let mut crossed: Vec<(Nanos, usize, NvmeCommand)> = Vec::new();
        for (cmd, class, init) in batch {
            match class {
                SubmitClass::TargetLocal => {
                    // Already on the target: no wire, no admission.
                    self.stats.target_local += 1;
                    meta.insert(cmd.cid, (0, false, init));
                    direct.push((now, cmd));
                }
                SubmitClass::Host | SubmitClass::PushdownStart => {
                    self.stats.capsules_sent += 1;
                    let bytes = capsule_bytes(&cmd.op);
                    self.stats.bytes_tx += bytes;
                    {
                        let is = &mut self.inits[init].stats;
                        is.capsules_sent += 1;
                        is.bytes_tx += bytes;
                    }
                    let outbound = self.crossing(true, bytes.saturating_sub(CMD_CAPSULE_HDR), init);
                    meta.insert(
                        cmd.cid,
                        (outbound, matches!(class, SubmitClass::Host), init),
                    );
                    crossed.push((now + outbound, init, cmd));
                }
            }
        }
        let mut arrivals: Vec<(Nanos, NvmeCommand)> = direct;
        if self.cfg.admit_ns == 0 {
            arrivals.extend(crossed.into_iter().map(|(at, _, cmd)| (at, cmd)));
        } else {
            arrivals.extend(self.admit(crossed));
        }
        arrivals.sort_by_key(|(at, _)| *at);
        for (arrive, cmd) in arrivals {
            self.dev
                .submit(qp, cmd)
                .expect("initiator window never exceeds target ring capacity");
            self.dev
                .ring_doorbell(arrive, qp)
                .expect("queue pair exists");
        }
        // The target's service instants are fixed at its doorbell: drain
        // its completion ring eagerly and compute the host-visible
        // instants (response capsules pay the return wire; target-side
        // pushdown completions stay at their local instants).
        self.dev.post_ready(Nanos::MAX, qp);
        let mut times = Vec::new();
        for mut c in self.dev.reap(qp, usize::MAX) {
            let (outbound, returns, init) = meta.get(&c.cid).copied().unwrap_or((0, true, 0));
            let back = if returns {
                self.stats.responses += 1;
                self.inits[init].stats.responses += 1;
                self.stats.bytes_rx += RSP_CAPSULE_HDR + c.data.len() as u64;
                self.crossing(false, 0, init)
            } else {
                0
            };
            c.fabric_ns = outbound + back;
            c.complete_at += back;
            times.push(c.complete_at);
            self.queues[qp].pending.push(c);
        }
        self.queues[qp].pending.sort_by_key(|c| c.complete_at);
        Ok(times)
    }

    fn post_ready(&mut self, now: Nanos, qp: QueuePairId) -> usize {
        let Some(q) = self.queues.get_mut(qp) else {
            return 0;
        };
        // `pending` is only appended to in ring_doorbell, which leaves
        // it sorted by host-visible instant.
        let take = q.pending.partition_point(|c| c.complete_at <= now);
        let mut posted: Vec<NvmeCompletion> = q.pending.drain(..take).collect();
        q.ready.append(&mut posted);
        let backlog = q.ready.len();
        self.dev.note_cq_backlog(backlog);
        take
    }

    fn reap(&mut self, now: Nanos, qp: QueuePairId, max: usize) -> Vec<NvmeCompletion> {
        let Some(q) = self.queues.get_mut(qp) else {
            return Vec::new();
        };
        let take = q.ready.len().min(max);
        let out: Vec<NvmeCompletion> = q.ready.drain(..take).collect();
        q.outstanding -= out.len();
        for c in &out {
            if let Some(idx) = self.init_of.remove(&c.cid) {
                self.inits[idx].outstanding = self.inits[idx].outstanding.saturating_sub(1);
            }
        }
        // The initiator is where the host observes the gap: the target's
        // eager drain in `ring_doorbell` reaps at service time, so the
        // meaningful doorbell→reap lag is measured here.
        let lag: Nanos = out
            .iter()
            .map(|c| now.saturating_sub(c.rang_at))
            .fold(0, Nanos::saturating_add);
        self.dev.note_reap_lag(lag);
        out
    }

    fn response_capsule(&mut self, now: Nanos, initiator: u32) -> Option<(Nanos, Nanos)> {
        let idx = self.init_idx(initiator);
        self.stats.responses += 1;
        self.inits[idx].stats.responses += 1;
        self.stats.bytes_rx += RSP_CAPSULE_HDR;
        let wire = self.crossing(false, 0, idx);
        Some((now + wire, wire))
    }

    fn is_fabric(&self) -> bool {
        true
    }

    fn fabric_stats(&self) -> FabricStats {
        self.stats
    }

    fn initiator_stats(&self) -> Vec<InitiatorStats> {
        self.inits.iter().map(|i| i.stats).collect()
    }

    fn device(&self) -> &NvmeDevice {
        &self.dev
    }

    fn device_mut(&mut self) -> &mut NvmeDevice {
        &mut self.dev
    }

    fn reset_timing(&mut self) {
        self.dev.reset_timing();
        for q in &mut self.queues {
            q.sq.clear();
            q.pending.clear();
            q.ready.clear();
            q.outstanding = 0;
        }
        for i in &mut self.inits {
            *i = InitState::default();
        }
        self.init_of.clear();
        self.admit_free_at = 0;
        self.stats = FabricStats::default();
    }
}

impl TransportConfig {
    /// Builds a transport around `dev`, drawing fabric randomness from
    /// `rng` (unused by the local path).
    pub fn build(&self, dev: NvmeDevice, rng: SimRng) -> Box<dyn Transport> {
        match self {
            TransportConfig::Local => Box::new(LocalTransport::new(dev)),
            TransportConfig::Fabric(fc) => Box::new(FabricTransport::new(dev, fc.clone(), rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DeviceClass, DeviceProfile};

    const SVC: Nanos = 3_000;

    fn dev(depth: usize) -> NvmeDevice {
        let profile = DeviceProfile {
            name: "test",
            class: DeviceClass::NvmGen2,
            read_latency: LatencyDist::Constant(SVC),
            write_latency: LatencyDist::Constant(SVC),
            channels: 4,
            queue_depth: depth,
        };
        NvmeDevice::new(profile, 1, SimRng::seed(7))
    }

    fn read_cmd(cid: u64) -> NvmeCommand {
        NvmeCommand {
            cid,
            op: NvmeOp::Read { slba: cid, nlb: 1 },
        }
    }

    fn write_cmd(cid: u64, bytes: usize) -> NvmeCommand {
        NvmeCommand {
            cid,
            op: NvmeOp::Write {
                slba: cid,
                data: vec![0xAB; bytes],
            },
        }
    }

    fn link(one_way: Nanos) -> FabricConfig {
        FabricConfig {
            to_target: LatencyDist::Constant(one_way),
            to_host: LatencyDist::Constant(one_way),
            target_proc_ns: 0,
            inflight_cap: 32,
            wire_ns_per_kb: 0,
            ..FabricConfig::contention_defaults()
        }
    }

    fn fabric(one_way: Nanos) -> FabricTransport {
        FabricTransport::new(dev(8), link(one_way), SimRng::seed(1))
    }

    #[test]
    fn local_transport_is_a_pass_through() {
        let mut t = LocalTransport::new(dev(8));
        let mut d = dev(8);
        for cid in 0..3 {
            t.submit(0, read_cmd(cid), SubmitClass::Host, 0).expect("t");
            d.submit(0, read_cmd(cid)).expect("d");
        }
        let tt = t.ring_doorbell(100, 0).expect("t bell");
        let dt = d.ring_doorbell(100, 0).expect("d bell");
        assert_eq!(tt, dt, "identical completion instants");
        let at = *tt.last().expect("times");
        assert_eq!(t.post_ready(at, 0), d.post_ready(at, 0));
        let tc = t.reap(at, 0, usize::MAX);
        let dc = d.reap_at(at, 0, usize::MAX);
        assert_eq!(tc.len(), dc.len());
        for (a, b) in tc.iter().zip(&dc) {
            assert_eq!(
                (a.cid, a.complete_at, a.fabric_ns),
                (b.cid, b.complete_at, 0)
            );
        }
        assert_eq!(t.device().stats(), d.stats());
        assert_eq!(t.fabric_stats(), FabricStats::default());
        assert!(t.initiator_stats().is_empty());
        assert!(t.response_capsule(0, 0).is_none());
    }

    #[test]
    fn host_class_pays_both_directions() {
        let mut t = fabric(10_000);
        t.submit(0, read_cmd(1), SubmitClass::Host, 0)
            .expect("submit");
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times, vec![10_000 + SVC + 10_000]);
        assert_eq!(t.post_ready(23_000, 0), 1);
        let c = t.reap(23_000, 0, usize::MAX).pop().expect("cqe");
        assert_eq!(c.fabric_ns, 20_000);
        assert_eq!(c.complete_at, 23_000);
        let s = t.fabric_stats();
        assert_eq!((s.capsules_sent, s.responses, s.target_local), (1, 1, 0));
        assert_eq!(s.wire_ns, 20_000);
    }

    #[test]
    fn pushdown_start_pays_outbound_only() {
        let mut t = fabric(10_000);
        t.submit(0, read_cmd(1), SubmitClass::PushdownStart, 0)
            .expect("submit");
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times, vec![10_000 + SVC], "completion stays target-side");
        t.post_ready(13_000, 0);
        let c = t.reap(13_000, 0, usize::MAX).pop().expect("cqe");
        assert_eq!(c.fabric_ns, 10_000);
        let s = t.fabric_stats();
        assert_eq!((s.capsules_sent, s.responses), (1, 0));
    }

    #[test]
    fn target_local_never_touches_the_wire() {
        let mut t = fabric(10_000);
        t.submit(0, read_cmd(1), SubmitClass::TargetLocal, 0)
            .expect("submit");
        let times = t.ring_doorbell(500, 0).expect("bell");
        assert_eq!(times, vec![500 + SVC]);
        t.post_ready(500 + SVC, 0);
        let c = t.reap(500 + SVC, 0, usize::MAX).pop().expect("cqe");
        assert_eq!(c.fabric_ns, 0);
        let s = t.fabric_stats();
        assert_eq!((s.capsules_sent, s.target_local, s.wire_ns), (0, 1, 0));
    }

    #[test]
    fn response_capsule_crosses_back() {
        let mut t = fabric(7_000);
        let (arrive, wire) = t.response_capsule(1_000, 0).expect("fabric");
        assert_eq!((arrive, wire), (8_000, 7_000));
        assert_eq!(t.fabric_stats().responses, 1);
        assert_eq!(t.fabric_stats().bytes_rx, RSP_CAPSULE_HDR);
    }

    #[test]
    fn capsule_window_backpressures_before_the_ring() {
        let mut t = FabricTransport::new(dev(8), link(1_000).with_inflight_cap(2), SimRng::seed(2));
        assert_eq!(t.queue_capacity(), 2, "window tighter than the ring");
        t.submit(0, read_cmd(1), SubmitClass::Host, 0).expect("one");
        t.submit(0, read_cmd(2), SubmitClass::Host, 0).expect("two");
        assert!(!t.can_accept(0, 1, 0, SubmitClass::Host));
        assert_eq!(
            t.submit(0, read_cmd(3), SubmitClass::Host, 0).unwrap_err(),
            QueueError::SubmissionFull
        );
        assert_eq!(t.fabric_stats().capsule_stalls, 1);
        assert_eq!(t.fabric_stats().max_inflight, 2);
        // Credits free at host reap, not at target completion.
        t.ring_doorbell(0, 0).expect("bell");
        t.post_ready(Nanos::MAX, 0);
        assert!(
            !t.can_accept(0, 1, 0, SubmitClass::Host),
            "posted but unreaped still holds credits"
        );
        assert_eq!(t.reap(10_000, 0, usize::MAX).len(), 2);
        assert!(t.can_accept(0, 2, 0, SubmitClass::Host));
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let cfg = FabricConfig {
            to_target: LatencyDist::Uniform(1_000, 50_000),
            to_host: LatencyDist::Uniform(1_000, 50_000),
            target_proc_ns: 250,
            inflight_cap: 32,
            wire_ns_per_kb: 0,
            ..FabricConfig::contention_defaults()
        };
        let mut t = FabricTransport::new(dev(8), cfg, SimRng::seed(99));
        for cid in 0..6 {
            t.submit(0, read_cmd(cid), SubmitClass::Host, 0)
                .expect("fits");
        }
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times.len(), 6);
        let horizon = *times.iter().max().expect("nonempty");
        t.post_ready(horizon, 0);
        let cqes = t.reap(horizon, 0, usize::MAX);
        let mut cids: Vec<u64> = cqes.iter().map(|c| c.cid).collect();
        cids.sort_unstable();
        assert_eq!(cids, vec![0, 1, 2, 3, 4, 5], "exactly one CQE per SQE");
        assert!(
            cqes.windows(2)
                .all(|w| w[0].complete_at <= w[1].complete_at),
            "host reaps in completion order"
        );
        assert_eq!(t.outstanding(0), 0);
    }

    #[test]
    fn reset_timing_clears_fabric_state() {
        let mut t = fabric(5_000);
        t.submit(0, read_cmd(1), SubmitClass::Host, 0)
            .expect("submit");
        t.ring_doorbell(0, 0).expect("bell");
        t.reset_timing();
        assert_eq!(t.outstanding(0), 0);
        assert_eq!(t.fabric_stats(), FabricStats::default());
        assert!(t
            .initiator_stats()
            .iter()
            .all(|i| *i == InitiatorStats::default()));
        assert_eq!(t.post_ready(Nanos::MAX, 0), 0, "no stale completions");
    }

    #[test]
    #[should_panic(expected = "inflight_cap 0 can never admit a capsule")]
    fn zero_inflight_cap_panics_like_irq_coalescing_depth() {
        let _ = FabricConfig::default().with_inflight_cap(0);
    }

    #[test]
    #[should_panic(expected = "inflight_cap 0 can never admit a capsule")]
    fn zero_inflight_cap_literal_panics_at_build() {
        let cfg = FabricConfig {
            inflight_cap: 0,
            ..FabricConfig::default()
        };
        let _ = FabricTransport::new(dev(8), cfg, SimRng::seed(3));
    }

    #[test]
    fn write_capsules_are_sized_from_their_payload() {
        let mut t = fabric(10_000);
        t.submit(0, write_cmd(1, 4096), SubmitClass::Host, 0)
            .expect("submit");
        t.submit(0, read_cmd(2), SubmitClass::Host, 0)
            .expect("submit");
        t.ring_doorbell(0, 0).expect("bell");
        let s = t.fabric_stats();
        assert_eq!(
            s.bytes_tx,
            2 * CMD_CAPSULE_HDR + 4096,
            "write capsule hauls its payload; read capsule is a header"
        );
        t.post_ready(Nanos::MAX, 0);
        let cqes = t.reap(Nanos::MAX, 0, usize::MAX);
        assert_eq!(cqes.len(), 2);
        let s = t.fabric_stats();
        let read_payload: u64 = cqes.iter().map(|c| c.data.len() as u64).sum();
        assert_eq!(s.bytes_rx, 2 * RSP_CAPSULE_HDR + read_payload);
    }

    #[test]
    fn payload_serialization_delays_write_capsules_only() {
        let mut cfg = link(10_000);
        cfg.wire_ns_per_kb = 1_024; // 1 ns per byte, exact arithmetic
        let mut t = FabricTransport::new(dev(8), cfg, SimRng::seed(1));
        t.submit(0, write_cmd(1, 2_048), SubmitClass::Host, 0)
            .expect("submit");
        let times = t.ring_doorbell(0, 0).expect("bell");
        // Write service in the test device is SVC too; outbound crossing
        // gains exactly the 2 KiB serialization.
        assert_eq!(times, vec![10_000 + 2_048 + SVC + 10_000]);
        let mut t2 = fabric(10_000);
        t2.submit(0, read_cmd(1), SubmitClass::Host, 0)
            .expect("submit");
        let rt = t2.ring_doorbell(0, 0).expect("bell");
        assert_eq!(
            rt,
            vec![10_000 + SVC + 10_000],
            "reads pay no serialization"
        );
    }

    #[test]
    fn initiator_window_backpressures_one_initiator_not_the_other() {
        let cfg = link(1_000).with_initiators(2).with_initiator_window(1);
        let mut t = FabricTransport::new(dev(8), cfg, SimRng::seed(4));
        t.submit(0, read_cmd(1), SubmitClass::Host, 0).expect("i0");
        assert!(
            !t.can_accept(0, 1, 0, SubmitClass::Host),
            "initiator 0 is at its window"
        );
        assert!(
            t.can_accept(0, 1, 1, SubmitClass::Host),
            "initiator 1 has its own credits"
        );
        assert_eq!(
            t.submit(0, read_cmd(2), SubmitClass::Host, 0).unwrap_err(),
            QueueError::SubmissionFull
        );
        t.submit(0, read_cmd(3), SubmitClass::Host, 1).expect("i1");
        assert_eq!(t.fabric_stats().capsule_stalls, 1);
        let per_init = t.initiator_stats();
        assert_eq!(per_init[0].capsule_stalls, 1);
        assert_eq!(per_init[1].capsule_stalls, 0);
        // Credits free at reap, per initiator.
        t.ring_doorbell(0, 0).expect("bell");
        t.post_ready(Nanos::MAX, 0);
        t.reap(Nanos::MAX, 0, usize::MAX);
        assert!(
            t.can_accept(0, 1, 0, SubmitClass::Host) && t.can_accept(0, 1, 1, SubmitClass::Host)
        );
    }

    #[test]
    fn admission_serializes_and_weights_round_robin() {
        // Two initiators' capsules arrive together on a constant-latency
        // wire; a 1 µs admission server must serialize them, and with
        // weights 1-vs-2 initiator 1 earns two admissions between
        // initiator 0's turns.
        let cfg = link(1_000)
            .with_initiators(2)
            .with_initiator_weights(vec![1, 2])
            .with_admit_ns(1_000);
        let mut t = FabricTransport::new(dev(8), cfg, SimRng::seed(5));
        t.submit(0, read_cmd(10), SubmitClass::Host, 0).expect("i0");
        t.submit(0, read_cmd(11), SubmitClass::Host, 0).expect("i0");
        t.submit(0, read_cmd(20), SubmitClass::Host, 1).expect("i1");
        t.submit(0, read_cmd(21), SubmitClass::Host, 1).expect("i1");
        let mut times = t.ring_doorbell(0, 0).expect("bell");
        times.sort_unstable();
        // All arrive at 1_000; admissions at 1_000..=4_000.
        assert_eq!(
            times,
            (1..=4)
                .map(|k| k * 1_000 + SVC + 1_000)
                .collect::<Vec<Nanos>>()
        );
        assert_eq!(t.fabric_stats().admit_wait_ns, 1_000 + 2_000 + 3_000);
        // Cold-start tie goes to the earliest submission (cid 10), then
        // weight-2 initiator 1 admits both its capsules before weight-1
        // initiator 0 gets its second turn. (Equal weights would admit
        // 10, 20, 11, 21.)
        let horizon = 4_000 + SVC + 1_000;
        t.post_ready(horizon, 0);
        let cqes = t.reap(horizon, 0, usize::MAX);
        let order: Vec<u64> = cqes.iter().map(|c| c.cid).collect();
        assert_eq!(
            order,
            vec![10, 20, 21, 11],
            "weight 2 admits twice between weight 1's turns"
        );
    }

    #[test]
    fn admission_is_a_pass_through_at_zero_admit_ns() {
        // Bit-for-bit guard: the same submissions with admit_ns 0 and an
        // otherwise-identical config produce identical instants to a
        // pre-admission transport.
        let mut a = fabric(9_000);
        let cfg = link(9_000).with_initiators(2);
        let mut b = FabricTransport::new(dev(8), cfg, SimRng::seed(1));
        for cid in 0..4 {
            a.submit(0, read_cmd(cid), SubmitClass::Host, 0).expect("a");
            b.submit(0, read_cmd(cid), SubmitClass::Host, (cid % 2) as u32)
                .expect("b");
        }
        assert_eq!(
            a.ring_doorbell(0, 0).expect("a"),
            b.ring_doorbell(0, 0).expect("b"),
            "multi-initiator attribution alone must not move instants"
        );
    }

    #[test]
    fn congestion_inflates_the_wire_beyond_the_knee() {
        let mut cfg = link(1_000).with_congestion(2, 500);
        cfg.inflight_cap = 8;
        let mut t = FabricTransport::new(dev(16), cfg, SimRng::seed(6));
        for cid in 0..6 {
            t.submit(0, read_cmd(cid), SubmitClass::Host, 0)
                .expect("fits");
        }
        // 6 in flight, knee 2 → every crossing pays (6-2)*500 = 2_000.
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert!(
            times
                .iter()
                .all(|&at| at >= 1_000 + 2_000 + SVC + 1_000 + 2_000),
            "crossings beyond the knee pay the congestion penalty: {times:?}"
        );
        let mut free = fabric(1_000);
        for cid in 0..6 {
            free.submit(0, read_cmd(cid), SubmitClass::Host, 0)
                .expect("fits");
        }
        let base = free.ring_doorbell(0, 0).expect("bell");
        assert!(times.iter().max() > base.iter().max());
    }

    #[test]
    fn loss_retransmits_and_delivers_exactly_once() {
        let cfg = link(1_000).with_loss(0.4, 50_000, 0.5);
        let mut t = FabricTransport::new(dev(8), cfg, SimRng::seed(0xBEEF));
        for cid in 0..6 {
            t.submit(0, read_cmd(cid), SubmitClass::Host, 0)
                .expect("fits");
        }
        let times = t.ring_doorbell(0, 0).expect("bell");
        assert_eq!(times.len(), 6, "every capsule eventually delivers");
        let horizon = *times.iter().max().expect("nonempty");
        t.post_ready(horizon, 0);
        let cqes = t.reap(horizon, 0, usize::MAX);
        let mut cids: Vec<u64> = cqes.iter().map(|c| c.cid).collect();
        cids.sort_unstable();
        assert_eq!(
            cids,
            vec![0, 1, 2, 3, 4, 5],
            "exactly one CQE per SQE under loss"
        );
        let s = t.fabric_stats();
        assert!(s.lost > 0, "0.4 loss over 12 crossings: {s:?}");
        assert_eq!(s.retransmits, s.lost);
        assert!(s.dups_suppressed <= s.retransmits);
        assert_eq!(t.initiator_stats()[0].retransmits, s.retransmits);
        assert!(
            s.wire_ns >= s.lost * 50_000,
            "each loss waits out the retransmit timeout"
        );
    }

    #[test]
    fn zero_loss_config_draws_no_extra_randomness() {
        // The loss machinery must not perturb the RNG stream when
        // disabled: same seed, with and without the (inactive) knobs,
        // identical instants.
        let mut plain = fabric(4_000);
        let cfg = link(4_000)
            .with_loss(0.0, 50_000, 0.0)
            .with_congestion(4, 0);
        let mut armed = FabricTransport::new(dev(8), cfg, SimRng::seed(1));
        for cid in 0..5 {
            plain
                .submit(0, read_cmd(cid), SubmitClass::Host, 0)
                .expect("p");
            armed
                .submit(0, read_cmd(cid), SubmitClass::Host, 0)
                .expect("a");
        }
        assert_eq!(
            plain.ring_doorbell(0, 0).expect("p"),
            armed.ring_doorbell(0, 0).expect("a")
        );
    }
}
