//! Device latency/parallelism profiles for the four hardware classes in
//! the paper's Figure 1.
//!
//! The P5800X profile is calibrated to Table 1 (3.224 µs device time for
//! a 512 B random read); the others use public datasheet figures. Only
//! the *shape* matters for the reproduction: HDD milliseconds, NAND tens
//! of microseconds, first-gen Optane ~10 µs, second-gen ~3 µs.

use bpfstor_sim::{LatencyDist, Nanos, MICROSECOND, MILLISECOND};

/// The four hardware classes of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Seagate Exos X16 (7200 rpm disk).
    Hdd,
    /// Intel 750-class TLC NAND SSD.
    Nand,
    /// First-generation Intel Optane SSD (900P).
    NvmGen1,
    /// Second-generation Intel Optane SSD (P5800X prototype).
    NvmGen2,
}

impl DeviceClass {
    /// All classes, in Figure 1's left-to-right order.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Hdd,
        DeviceClass::Nand,
        DeviceClass::NvmGen1,
        DeviceClass::NvmGen2,
    ];

    /// Figure 1's axis label for this class.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::Hdd => "HDD",
            DeviceClass::Nand => "NAND",
            DeviceClass::NvmGen1 => "NVM-1",
            DeviceClass::NvmGen2 => "NVM-2",
        }
    }
}

/// Service-time and parallelism model of one device.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Which Figure 1 class this profile belongs to.
    pub class: DeviceClass,
    /// Per-command service time for 512 B random reads.
    pub read_latency: LatencyDist,
    /// Per-command service time for 512 B writes.
    pub write_latency: LatencyDist,
    /// Independent internal channels (dies/planes/actuators): commands on
    /// different channels overlap fully.
    pub channels: usize,
    /// Submission/completion queue depth per queue pair.
    pub queue_depth: usize,
}

impl DeviceProfile {
    /// Seagate Exos X16: seek + rotational latency dominate. Mean random
    /// read ≈ 4.16 ms (~240 IOPS), a single actuator.
    pub fn hdd_exos_x16() -> Self {
        DeviceProfile {
            name: "Seagate Exos X16 (HDD)",
            class: DeviceClass::Hdd,
            // 80% short-ish seeks, 20% long seeks + rotation.
            read_latency: LatencyDist::Bimodal {
                p_a: 0.8,
                a: Box::new(LatencyDist::Uniform(2 * MILLISECOND, 5 * MILLISECOND)),
                b: Box::new(LatencyDist::Uniform(5 * MILLISECOND, 9 * MILLISECOND)),
            },
            write_latency: LatencyDist::Uniform(2 * MILLISECOND, 9 * MILLISECOND),
            channels: 1,
            queue_depth: 32,
        }
    }

    /// Intel 750-class TLC NAND: ~80 µs random read.
    pub fn nand_tlc() -> Self {
        DeviceProfile {
            name: "Intel 750 TLC NAND",
            class: DeviceClass::Nand,
            read_latency: LatencyDist::LogNormal {
                median: 78 * MICROSECOND,
                sigma: 0.18,
            },
            write_latency: LatencyDist::LogNormal {
                median: 25 * MICROSECOND,
                sigma: 0.25,
            },
            channels: 8,
            queue_depth: 1024,
        }
    }

    /// First-generation Intel Optane SSD (900P): ~10 µs random read.
    pub fn optane_gen1_900p() -> Self {
        DeviceProfile {
            name: "Intel Optane 900P (NVM-1)",
            class: DeviceClass::NvmGen1,
            read_latency: LatencyDist::LogNormal {
                median: 10 * MICROSECOND,
                sigma: 0.06,
            },
            write_latency: LatencyDist::LogNormal {
                median: 10 * MICROSECOND,
                sigma: 0.08,
            },
            channels: 7,
            queue_depth: 1024,
        }
    }

    /// Second-generation Intel Optane SSD (P5800X prototype): Table 1
    /// measures 3.224 µs of device time per 512 B random read.
    pub fn optane_gen2_p5800x() -> Self {
        DeviceProfile {
            name: "Intel Optane P5800X (NVM-2)",
            class: DeviceClass::NvmGen2,
            read_latency: LatencyDist::LogNormal {
                median: 3_218,
                sigma: 0.06,
            },
            write_latency: LatencyDist::LogNormal {
                median: 3_600,
                sigma: 0.08,
            },
            channels: 16,
            queue_depth: 4096,
        }
    }

    /// The profile for a Figure 1 class.
    pub fn for_class(class: DeviceClass) -> Self {
        match class {
            DeviceClass::Hdd => Self::hdd_exos_x16(),
            DeviceClass::Nand => Self::nand_tlc(),
            DeviceClass::NvmGen1 => Self::optane_gen1_900p(),
            DeviceClass::NvmGen2 => Self::optane_gen2_p5800x(),
        }
    }

    /// Analytic mean read latency, for calibration reports.
    pub fn mean_read_latency(&self) -> f64 {
        self.read_latency.mean()
    }

    /// Upper bound on read IOPS given full channel parallelism.
    pub fn max_read_iops(&self) -> f64 {
        self.channels as f64 / (self.mean_read_latency() / 1e9)
    }
}

/// Returns true when `ns` is within `pct` percent of `target`.
pub fn within_pct(ns: f64, target: Nanos, pct: f64) -> bool {
    let t = target as f64;
    (ns - t).abs() / t * 100.0 <= pct
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfstor_sim::SimRng;

    #[test]
    fn class_ordering_matches_figure1() {
        // Mean latencies must be strictly decreasing left to right.
        let mut prev = f64::INFINITY;
        for class in DeviceClass::ALL {
            let p = DeviceProfile::for_class(class);
            let m = p.mean_read_latency();
            assert!(m < prev, "{} not faster than its predecessor", p.name);
            prev = m;
        }
    }

    #[test]
    fn p5800x_matches_table1_device_time() {
        let p = DeviceProfile::optane_gen2_p5800x();
        assert!(
            within_pct(p.mean_read_latency(), 3_224, 2.0),
            "mean {} should be ~3224ns",
            p.mean_read_latency()
        );
    }

    #[test]
    fn gen1_is_about_10us() {
        let p = DeviceProfile::optane_gen1_900p();
        assert!(within_pct(p.mean_read_latency(), 10_018, 3.0));
    }

    #[test]
    fn hdd_is_milliseconds() {
        let p = DeviceProfile::hdd_exos_x16();
        let m = p.mean_read_latency();
        assert!(m > 3.0 * MILLISECOND as f64 && m < 6.0 * MILLISECOND as f64);
    }

    #[test]
    fn empirical_means_match_analytic() {
        let mut rng = SimRng::seed(7);
        for class in DeviceClass::ALL {
            let p = DeviceProfile::for_class(class);
            let mut sum = 0.0;
            let n = 20_000;
            for _ in 0..n {
                sum += p.read_latency.sample(&mut rng) as f64;
            }
            let emp = sum / n as f64;
            let ana = p.mean_read_latency();
            assert!(
                (emp - ana).abs() / ana < 0.03,
                "{}: empirical {emp} vs analytic {ana}",
                p.name
            );
        }
    }

    #[test]
    fn p5800x_supports_millions_of_iops() {
        let p = DeviceProfile::optane_gen2_p5800x();
        assert!(
            p.max_read_iops() > 4.0e6,
            "need headroom for Figure 3's >2.5x: {}",
            p.max_read_iops()
        );
    }

    #[test]
    fn labels() {
        assert_eq!(DeviceClass::Hdd.label(), "HDD");
        assert_eq!(DeviceClass::NvmGen2.label(), "NVM-2");
    }
}
