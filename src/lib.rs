//! # bpfstor — BPF for storage, an exokernel-inspired approach
//!
//! Full-system reproduction of the HotOS 2021 paper *"BPF for storage: an
//! exokernel-inspired approach"* (Wu, Wang, Zhong, Cidon, Stutsman, Tai,
//! Yang). This facade crate re-exports every subsystem so applications can
//! depend on a single crate:
//!
//! - [`sim`] — deterministic discrete-event simulation substrate
//! - [`vm`] — eBPF-subset virtual machine (assembler, verifier, interpreter)
//! - [`device`] — NVMe device model with per-class latency profiles
//! - [`fs`] — extent-based file system with extent-change notification
//! - [`kernel`] — the simulated Linux-like storage stack with BPF hooks
//! - [`btree`] — on-disk B-tree used by the paper's main benchmark
//! - [`lsm`] — LSM tree / SSTable substrate (immutable index files)
//! - [`workload`] — YCSB-like workload generator
//! - [`core`] — the paper's contribution: the workload-generic
//!   `PushdownSession` facade, typed program handles, per-chain tokens,
//!   verified program generators, and dispatch control
//!
//! # Examples
//!
//! ```
//! use bpfstor::core::{Btree, DispatchMode, PushdownSession};
//!
//! // Build a small on-disk B-tree inside a simulated machine and look a
//! // key up via a BPF program resubmitted from the NVMe driver hook.
//! // The same session API drives the Sst, Scan, and Chase workloads —
//! // and handles extent re-arming and retry automatically.
//! let mut session = PushdownSession::builder(Btree::depth(3))
//!     .dispatch(DispatchMode::DriverHook)
//!     .build()
//!     .expect("session construction");
//! let hit = session.lookup(42).expect("lookup");
//! assert!(hit.found);
//! assert_eq!(hit.ios, 3, "depth-3 tree costs three I/Os");
//! ```

pub use bpfstor_btree as btree;
pub use bpfstor_core as core;
pub use bpfstor_device as device;
pub use bpfstor_fs as fs;
pub use bpfstor_kernel as kernel;
pub use bpfstor_lsm as lsm;
pub use bpfstor_sim as sim;
pub use bpfstor_vm as vm;
pub use bpfstor_workload as workload;
