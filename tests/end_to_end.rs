//! Cross-crate integration tests: the full pipeline from on-disk bytes
//! through the simulated kernel, the verifier, and the interpreter back
//! to the application, for every dispatch path.

use bpfstor::core::{sst_get_program, DispatchMode, SstGetDriver, StorageBpfBuilder};
use bpfstor::kernel::{ChainStatus, Machine, MachineConfig};
use bpfstor::lsm::sstable::{build_image, Footer};
use bpfstor::lsm::BLOCK;
use bpfstor::sim::SECOND;

#[test]
fn all_dispatch_modes_agree_on_lookups() {
    let mut results: Vec<Vec<(bool, Option<u64>)>> = Vec::new();
    for mode in DispatchMode::ALL {
        let mut env = StorageBpfBuilder::new()
            .btree_depth(5)
            .dispatch(mode)
            .build()
            .expect("env");
        let probes: Vec<u64> = (0..40).map(|i| i * 37 % (env.nkeys + 50)).collect();
        let mut out = Vec::new();
        for key in probes {
            let hit = env.lookup_checked(key).expect("lookup");
            out.push((hit.found, hit.value));
        }
        results.push(out);
    }
    assert_eq!(results[0], results[1], "user vs syscall hook");
    assert_eq!(results[0], results[2], "user vs driver hook");
}

#[test]
fn lookup_depth_equals_io_count() {
    for depth in [1u32, 3, 7] {
        let mut env = StorageBpfBuilder::new()
            .btree_depth(depth)
            .dispatch(DispatchMode::DriverHook)
            .build()
            .expect("env");
        let hit = env.lookup_checked(0).expect("lookup");
        assert!(hit.found);
        assert_eq!(hit.ios, depth, "one I/O per level");
    }
}

#[test]
fn uring_and_sync_produce_identical_verdicts() {
    let run = |uring: bool| {
        let mut env = StorageBpfBuilder::new()
            .btree_depth(4)
            .dispatch(DispatchMode::DriverHook)
            .seed(1234)
            .build()
            .expect("env");
        let (report, stats) = if uring {
            env.bench_lookups_uring(1, 4, 10_000_000)
        } else {
            env.bench_lookups(1, 10_000_000)
        };
        assert_eq!(stats.mismatches, 0);
        assert_eq!(report.errors, 0);
        stats.hits + stats.misses
    };
    assert!(run(false) > 0);
    assert!(run(true) > 0);
}

#[test]
fn invalidation_roundtrip_through_facade() {
    let mut env = StorageBpfBuilder::new()
        .btree_depth(4)
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("env");
    assert!(env.lookup_checked(1).expect("before").found);
    let status = env.invalidate_and_rearm().expect("protocol");
    assert!(
        matches!(status, ChainStatus::ExtentMiss | ChainStatus::Invalidated),
        "{status:?}"
    );
    let hit = env.lookup_checked(1).expect("after rearm");
    assert!(hit.found, "lookups work against the relocated file");
}

#[test]
fn sst_cold_get_offload_agrees_with_native() {
    const VS: usize = 48;
    let entries: Vec<(u64, Vec<u8>)> = (0..600u64)
        .map(|i| {
            let mut v = vec![0u8; VS];
            v[..8].copy_from_slice(&(i * 31).to_le_bytes());
            (i * 3, v)
        })
        .collect();
    let image = build_image(&entries).expect("image");
    let footer = Footer::decode(&image[image.len() - BLOCK..]).expect("footer");
    let footer_off = (footer.total_blocks() - 1) * BLOCK as u64;
    assert!(footer.index_blocks >= 1);

    let probes: Vec<u64> = (0..50u64).map(|i| i * 41 % 2_000).collect();
    let mut verdicts: Vec<Vec<(u64, Option<Vec<u8>>)>> = Vec::new();
    for mode in [DispatchMode::User, DispatchMode::DriverHook] {
        let mut m = Machine::new(MachineConfig::default());
        m.create_file("t.sst", &image).expect("create");
        let fd = m.open("t.sst", true).expect("open");
        if mode != DispatchMode::User {
            m.install(fd, sst_get_program(VS as u32), 0).expect("install");
        }
        let expect: Vec<Option<Vec<u8>>> = probes
            .iter()
            .map(|k| entries.iter().find(|(ek, _)| ek == k).map(|(_, v)| v.clone()))
            .collect();
        let mut d = SstGetDriver::new(fd, mode, footer_off, probes.clone(), expect);
        let report = m.run_closed_loop(1, SECOND, &mut d);
        assert_eq!(d.stats.mismatches, 0, "{mode:?}");
        assert_eq!(d.stats.errors, 0, "{mode:?}");
        assert_eq!(report.errors, 0);
        let mut sorted = d.results.clone();
        sorted.sort_by_key(|(k, _)| *k);
        verdicts.push(sorted);
    }
    assert_eq!(verdicts[0], verdicts[1], "native vs offloaded cold gets");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut env = StorageBpfBuilder::new()
            .btree_depth(6)
            .dispatch(DispatchMode::DriverHook)
            .seed(777)
            .build()
            .expect("env");
        let (report, stats) = env.bench_lookups(4, 15_000_000);
        (
            report.chains,
            report.ios,
            report.sim_time,
            report.iops.to_bits(),
            stats.hits,
            stats.misses,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_interleavings_but_correct_results() {
    for seed in [1u64, 2, 3] {
        let mut env = StorageBpfBuilder::new()
            .btree_depth(5)
            .dispatch(DispatchMode::DriverHook)
            .seed(seed)
            .build()
            .expect("env");
        let (report, stats) = env.bench_lookups(3, 10_000_000);
        assert_eq!(stats.mismatches, 0, "seed {seed}");
        assert_eq!(report.errors, 0, "seed {seed}");
    }
}

#[test]
fn driver_hook_beats_baseline_at_depth() {
    let mut base = StorageBpfBuilder::new()
        .btree_depth(8)
        .dispatch(DispatchMode::User)
        .build()
        .expect("env");
    let mut hook = StorageBpfBuilder::new()
        .btree_depth(8)
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("env");
    let (rb, _) = base.bench_lookups(4, 15_000_000);
    let (rh, _) = hook.bench_lookups(4, 15_000_000);
    let speedup = rh.chains_per_sec / rb.chains_per_sec;
    assert!(
        speedup > 1.5,
        "depth-8 driver hook should clearly win: {speedup:.2}x"
    );
}

#[test]
fn stats_map_counts_kernel_side_without_extra_crossings() {
    use bpfstor::core::{btree_lookup_program_with_stats, stats_slot, BtreeLookupDriver};

    // Build a depth-4 environment but install the stats-map variant.
    let mut env = StorageBpfBuilder::new()
        .btree_depth(4)
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("env");
    env.machine
        .install(env.fd, btree_lookup_program_with_stats(), 0)
        .expect("install stats variant");

    let mut d = BtreeLookupDriver::new(env.fd, DispatchMode::DriverHook, env.root_off(), env.nkeys);
    d.max_chains = 25;
    let report = env.machine.run_closed_loop(1, SECOND, &mut d);
    assert_eq!(report.errors, 0);
    assert_eq!(d.stats.mismatches, 0, "stats variant returns correct values");

    let slot = |m: &mut Machine, s: u32| -> u64 {
        let v = m
            .map_value(env.fd, 0, &s.to_le_bytes())
            .expect("map value readable after the run");
        u64::from_le_bytes(v.try_into().expect("8B"))
    };
    let invocations = slot(&mut env.machine, stats_slot::INVOCATIONS);
    let resubmits = slot(&mut env.machine, stats_slot::RESUBMITS);
    let hits = slot(&mut env.machine, stats_slot::HITS);
    let misses = slot(&mut env.machine, stats_slot::MISSES);

    assert_eq!(invocations, 25 * 4, "one invocation per hop");
    assert_eq!(resubmits, 25 * 3, "three interior hops per depth-4 lookup");
    assert_eq!(hits + misses, 25, "every chain terminates at a leaf");
    assert_eq!(hits, d.stats.hits);
    assert_eq!(misses, d.stats.misses);
}
