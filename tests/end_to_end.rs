//! Cross-crate integration tests: the full pipeline from on-disk bytes
//! through the simulated kernel, the verifier, and the interpreter back
//! to the application — for every dispatch path and every workload,
//! through the one workload-generic [`PushdownSession`] API.

use bpfstor::core::{
    btree_lookup_program_with_stats, stats_slot, Btree, BtreeLookupDriver, Chase, DispatchMode,
    PushdownSession, Scan, SessionError, Sst, CHASE_PAYLOAD,
};
use bpfstor::kernel::{ChainStatus, Machine, ProgHandle};
use bpfstor::sim::{MILLISECOND, SECOND};

/// A small SSTable probe set: 600 entries with 48-byte values, probed by
/// a mix of present and absent keys.
fn sst_fixture() -> (Vec<(u64, Vec<u8>)>, Vec<u64>) {
    const VS: usize = 48;
    let entries: Vec<(u64, Vec<u8>)> = (0..600u64)
        .map(|i| {
            let mut v = vec![0u8; VS];
            v[..8].copy_from_slice(&(i * 31).to_le_bytes());
            (i * 3, v)
        })
        .collect();
    let probes: Vec<u64> = (0..50u64).map(|i| i * 41 % 2_000).collect();
    (entries, probes)
}

/// Fixed-width scan rows with a pseudo-random "price" column.
fn scan_fixture() -> Vec<(u64, Vec<u8>)> {
    (0..400u64)
        .map(|i| {
            let mut v = vec![0u8; 24];
            let price = i.wrapping_mul(2654435761) % 10_000;
            v[..8].copy_from_slice(&price.to_le_bytes());
            (i, v)
        })
        .collect()
}

#[test]
fn all_four_workloads_run_in_all_three_modes_closed_loop() {
    for mode in DispatchMode::ALL {
        // B-tree point lookups.
        let mut s = PushdownSession::builder(Btree::depth(4).max_chains(30))
            .dispatch(mode)
            .build()
            .expect("btree session");
        let (report, stats) = s.run_closed_loop(2, SECOND);
        assert_eq!(stats.completed, 30, "btree {mode:?}");
        assert_eq!(stats.mismatches, 0, "btree {mode:?}");
        assert_eq!(stats.errors, 0, "btree {mode:?}");
        assert_eq!(report.errors, 0, "btree {mode:?}");

        // Cold SSTable gets.
        let (entries, probes) = sst_fixture();
        let nprobes = probes.len() as u64;
        let mut s = PushdownSession::builder(Sst::new(entries, probes))
            .dispatch(mode)
            .build()
            .expect("sst session");
        let (_, stats) = s.run_closed_loop(1, SECOND);
        assert_eq!(stats.completed, nprobes, "sst {mode:?}");
        assert_eq!(stats.mismatches, 0, "sst {mode:?}");
        assert_eq!(stats.errors, 0, "sst {mode:?}");
        assert!(stats.hits > 0 && stats.misses > 0, "probe mix {mode:?}");

        // Whole-table scan/filter/aggregate.
        let mut s = PushdownSession::builder(Scan::new(scan_fixture(), vec![0, 5_000, 20_000]))
            .dispatch(mode)
            .build()
            .expect("scan session");
        let (_, stats) = s.run_closed_loop(1, SECOND);
        assert_eq!(stats.completed, 3, "scan {mode:?}");
        assert_eq!(stats.mismatches, 0, "scan {mode:?}");
        assert_eq!(stats.errors, 0, "scan {mode:?}");

        // Pointer chase.
        let mut s = PushdownSession::builder(Chase::hops(6).max_chains(10).random_start(true))
            .dispatch(mode)
            .build()
            .expect("chase session");
        let (_, stats) = s.run_closed_loop(2, SECOND);
        assert_eq!(stats.completed, 10, "chase {mode:?}");
        assert_eq!(stats.mismatches, 0, "chase {mode:?}");
        assert_eq!(stats.errors, 0, "chase {mode:?}");
        assert_eq!(stats.hits, 10, "every chase reaches the sentinel");
    }
}

#[test]
fn all_four_workloads_run_in_all_three_modes_uring() {
    for mode in DispatchMode::ALL {
        let mut s = PushdownSession::builder(Btree::depth(4).max_chains(16))
            .dispatch(mode)
            .build()
            .expect("btree session");
        let (_, stats) = s.run_uring(1, 4, SECOND);
        assert_eq!(stats.completed, 16, "btree uring {mode:?}");
        assert_eq!(stats.mismatches + stats.errors, 0, "btree uring {mode:?}");

        let (entries, probes) = sst_fixture();
        let nprobes = probes.len() as u64;
        let mut s = PushdownSession::builder(Sst::new(entries, probes))
            .dispatch(mode)
            .build()
            .expect("sst session");
        let (_, stats) = s.run_uring(1, 4, SECOND);
        assert_eq!(stats.completed, nprobes, "sst uring {mode:?}");
        assert_eq!(stats.mismatches + stats.errors, 0, "sst uring {mode:?}");

        let mut s = PushdownSession::builder(Scan::new(scan_fixture(), vec![0, 5_000]))
            .dispatch(mode)
            .build()
            .expect("scan session");
        let (_, stats) = s.run_uring(1, 2, SECOND);
        assert_eq!(stats.completed, 2, "scan uring {mode:?}");
        assert_eq!(stats.mismatches + stats.errors, 0, "scan uring {mode:?}");

        let mut s = PushdownSession::builder(Chase::hops(5).max_chains(12))
            .dispatch(mode)
            .build()
            .expect("chase session");
        let (_, stats) = s.run_uring(1, 4, SECOND);
        assert_eq!(stats.completed, 12, "chase uring {mode:?}");
        assert_eq!(stats.mismatches + stats.errors, 0, "chase uring {mode:?}");
    }
}

#[test]
fn all_dispatch_modes_agree_on_btree_lookups() {
    let mut results: Vec<Vec<(bool, Option<u64>)>> = Vec::new();
    for mode in DispatchMode::ALL {
        let mut s = PushdownSession::builder(Btree::depth(5))
            .dispatch(mode)
            .build()
            .expect("session");
        let nkeys = s.workload().nkeys();
        let probes: Vec<u64> = (0..40).map(|i| i * 37 % (nkeys + 50)).collect();
        let mut out = Vec::new();
        for key in probes {
            // Out-of-range probes are misses, not errors.
            let hit = s.lookup(key).expect("lookup");
            out.push((hit.found, hit.output));
        }
        results.push(out);
    }
    assert_eq!(results[0], results[1], "user vs syscall hook");
    assert_eq!(results[0], results[2], "user vs driver hook");
}

#[test]
fn all_dispatch_modes_agree_on_sst_gets() {
    let (entries, probes) = sst_fixture();
    let mut verdicts: Vec<Vec<(u64, Option<Vec<u8>>)>> = Vec::new();
    for mode in DispatchMode::ALL {
        let mut s = PushdownSession::builder(Sst::new(entries.clone(), probes.clone()))
            .dispatch(mode)
            .build()
            .expect("session");
        let (report, stats) = s.run_closed_loop(1, SECOND);
        assert_eq!(stats.mismatches, 0, "{mode:?}");
        assert_eq!(stats.errors, 0, "{mode:?}");
        assert_eq!(report.errors, 0);
        let mut sorted = s.workload().results.clone();
        sorted.sort_by_key(|(k, _)| *k);
        verdicts.push(sorted);
    }
    assert_eq!(verdicts[0], verdicts[1], "native vs syscall-hook gets");
    assert_eq!(verdicts[0], verdicts[2], "native vs driver-hook gets");
}

#[test]
fn scan_aggregates_match_native_computation_in_hook_mode() {
    let rows = scan_fixture();
    let mut s = PushdownSession::builder(Scan::new(rows, vec![5_000]))
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("session");
    let expected = s.workload().expected(5_000);
    let hit = s.lookup(5_000).expect("scan");
    assert_eq!(hit.output, Some(expected));
    assert_eq!(
        hit.ios,
        s.workload().data_blocks(),
        "one I/O per data block, none for the result"
    );
}

#[test]
fn lookup_depth_equals_io_count() {
    for depth in [1u32, 3, 7] {
        let mut s = PushdownSession::builder(Btree::depth(depth))
            .dispatch(DispatchMode::DriverHook)
            .build()
            .expect("session");
        let hit = s.lookup(0).expect("lookup");
        assert!(hit.found);
        assert_eq!(hit.ios, depth, "one I/O per level");
    }
}

#[test]
fn chase_emits_the_payload_with_one_io_per_hop() {
    let mut s = PushdownSession::builder(Chase::hops(9))
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("session");
    let hit = s.lookup(0).expect("chase");
    assert_eq!(hit.output, Some(CHASE_PAYLOAD));
    assert_eq!(hit.ios, 9);
}

#[test]
fn uring_and_sync_produce_identical_verdicts() {
    let run = |uring: bool| {
        let mut s = PushdownSession::builder(Btree::depth(4))
            .dispatch(DispatchMode::DriverHook)
            .seed(1234)
            .build()
            .expect("session");
        let (report, stats) = if uring {
            s.run_uring(1, 4, 10 * MILLISECOND)
        } else {
            s.run_closed_loop(1, 10 * MILLISECOND)
        };
        assert_eq!(stats.mismatches, 0);
        assert_eq!(report.errors, 0);
        stats.hits + stats.misses
    };
    assert!(run(false) > 0);
    assert!(run(true) > 0);
}

// --- The §4 failure protocol -------------------------------------------------

#[test]
fn extent_miss_auto_retry_completes_lookups_mid_relocation() {
    // The acceptance scenario: the file is relocated (defragmenter
    // style) while lookups are in flight; the session's rearm-and-retry
    // policy absorbs the invalidation and every lookup still completes,
    // without the caller touching the ioctl.
    let mut s = PushdownSession::builder(Btree::depth(5).max_chains(200))
        .dispatch(DispatchMode::DriverHook)
        .retry_budget(2)
        .build()
        .expect("session");
    s.schedule_relocation(2 * MILLISECOND);
    let (report, stats) = s.run_closed_loop(2, SECOND);
    assert_eq!(stats.completed, 200, "every logical lookup completed");
    assert_eq!(stats.errors, 0, "no failure ever reached the caller");
    assert_eq!(stats.mismatches, 0, "relocated blocks still decode right");
    assert!(
        stats.rearm_retries > 0,
        "the relocation really did invalidate in-flight chains"
    );
    assert_eq!(report.rearm_retries, stats.rearm_retries);
}

#[test]
fn extent_miss_auto_retry_works_under_uring_too() {
    // Same scenario through the batched submission path: retries are
    // queued as pending SQEs and submitted at the next enter.
    let mut s = PushdownSession::builder(Btree::depth(5).max_chains(200))
        .dispatch(DispatchMode::DriverHook)
        .retry_budget(2)
        .build()
        .expect("session");
    s.schedule_relocation(200_000);
    let (report, stats) = s.run_uring(1, 4, SECOND);
    assert_eq!(stats.completed, 200, "every logical lookup completed");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.mismatches, 0);
    assert!(stats.rearm_retries > 0, "retries actually exercised");
    assert_eq!(report.errors, 0);
}

#[test]
fn retry_budget_zero_surfaces_the_extent_miss() {
    let mut s = PushdownSession::builder(Btree::depth(4))
        .dispatch(DispatchMode::DriverHook)
        .retry_budget(0)
        .build()
        .expect("session");
    s.schedule_relocation(0);
    let err = s.lookup(1).expect_err("invalidation must surface");
    match err {
        SessionError::Chain(status) => assert!(
            status.is_rearmable(),
            "expected ExtentMiss/Invalidated, got {status:?}"
        ),
        other => panic!("unexpected error {other:?}"),
    }
    // Manual recovery still works.
    s.rearm().expect("rearm");
    let hit = s.lookup(1).expect("after rearm");
    assert!(hit.found, "lookups work against the relocated file");
}

#[test]
fn scan_survives_relocation_through_auto_retry() {
    // A scan chain is long (one hop per data block), so a mid-scan
    // relocation reliably hits it; the retry restarts the whole scan.
    let mut s = PushdownSession::builder(Scan::new(scan_fixture(), vec![0]))
        .dispatch(DispatchMode::DriverHook)
        .retry_budget(2)
        .build()
        .expect("session");
    s.schedule_relocation(20_000);
    let expected = s.workload().expected(0);
    let hit = s.lookup(0).expect("scan completes despite relocation");
    assert_eq!(hit.output, Some(expected));
    assert!(hit.attempts > 0, "the scan was actually restarted");
}

// --- Token-keyed driver state (regression) -----------------------------------

#[test]
fn sst_same_key_on_two_concurrent_chains_does_not_collide() {
    // Regression: SstGetDriver used to key its user-path state machine
    // on the lookup key, so two in-flight chains for the same key
    // corrupted each other's stage (the second chain parsed its footer
    // block as an index block). Tokens key the state now.
    use bpfstor::core::SstGetDriver;
    use bpfstor::kernel::MachineConfig;
    use bpfstor::lsm::sstable::{build_image, Footer};
    use bpfstor::lsm::BLOCK;

    let (entries, _) = sst_fixture();
    let image = build_image(&entries).expect("image");
    let footer = Footer::decode(&image[image.len() - BLOCK..]).expect("footer");
    let footer_off = (footer.total_blocks() - 1) * BLOCK as u64;

    let present = entries[17].0;
    let expect_value = entries[17].1.clone();
    // The same key issued on two chains that fly concurrently (uring
    // batch 2), plus a second pair for good measure.
    let keys = vec![present, present, present, present];
    let expect = vec![
        Some(expect_value.clone()),
        Some(expect_value.clone()),
        Some(expect_value.clone()),
        Some(expect_value),
    ];

    let mut m = Machine::new(MachineConfig::default());
    m.create_file("t.sst", &image).expect("create");
    let fd = m.open("t.sst", true).expect("open");
    let mut d = SstGetDriver::new(fd, DispatchMode::User, footer_off, keys, expect);
    let report = m.run_uring(1, 2, SECOND, &mut d);
    assert_eq!(d.stats.completed, 4);
    assert_eq!(
        d.stats.mismatches, 0,
        "concurrent same-key chains must not share state: {:?}",
        d.results
    );
    assert_eq!(d.stats.errors, 0);
    assert_eq!(report.errors, 0);
}

// --- Program handles ----------------------------------------------------------

#[test]
fn stats_map_counts_kernel_side_through_the_handle() {
    // Build a depth-4 session, then swap in the stats-map program
    // variant; its handle addresses the map afterwards.
    let mut s = PushdownSession::builder(Btree::depth(4))
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("session");
    let fd = s.fd();
    let root_off = s.workload().root_off();
    let nkeys = s.workload().nkeys();
    let stats_handle = s
        .machine_mut()
        .install(fd, btree_lookup_program_with_stats(), 0)
        .expect("install stats variant");
    assert_ne!(Some(stats_handle), s.handle(), "a second, distinct handle");

    let mut d = BtreeLookupDriver::new(fd, DispatchMode::DriverHook, root_off, nkeys);
    d.max_chains = 25;
    let report = s.machine_mut().run_closed_loop(1, SECOND, &mut d);
    assert_eq!(report.errors, 0);
    assert_eq!(
        d.stats.mismatches, 0,
        "stats variant returns correct values"
    );

    let slot = |m: &mut Machine, h: ProgHandle, s: u32| -> u64 {
        let v = m
            .map_value(h, 0, &s.to_le_bytes())
            .expect("map value readable after the run");
        u64::from_le_bytes(v.try_into().expect("8B"))
    };
    let m = s.machine_mut();
    let invocations = slot(m, stats_handle, stats_slot::INVOCATIONS);
    let resubmits = slot(m, stats_handle, stats_slot::RESUBMITS);
    let hits = slot(m, stats_handle, stats_slot::HITS);
    let misses = slot(m, stats_handle, stats_slot::MISSES);

    assert_eq!(invocations, 25 * 4, "one invocation per hop");
    assert_eq!(resubmits, 25 * 3, "three interior hops per depth-4 lookup");
    assert_eq!(hits + misses, 25, "every chain terminates at a leaf");
    assert_eq!(hits, d.stats.hits);
    assert_eq!(misses, d.stats.misses);
}

// --- Whole-pipeline properties -------------------------------------------------

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut s = PushdownSession::builder(Btree::depth(6))
            .dispatch(DispatchMode::DriverHook)
            .seed(777)
            .build()
            .expect("session");
        let (report, stats) = s.run_closed_loop(4, 15 * MILLISECOND);
        (
            report.chains,
            report.ios,
            report.sim_time,
            report.iops.to_bits(),
            stats.hits,
            stats.misses,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_interleavings_but_correct_results() {
    for seed in [1u64, 2, 3] {
        let mut s = PushdownSession::builder(Btree::depth(5))
            .dispatch(DispatchMode::DriverHook)
            .seed(seed)
            .build()
            .expect("session");
        let (report, stats) = s.run_closed_loop(3, 10 * MILLISECOND);
        assert_eq!(stats.mismatches, 0, "seed {seed}");
        assert_eq!(report.errors, 0, "seed {seed}");
    }
}

#[test]
fn driver_hook_beats_baseline_at_depth() {
    let run = |mode: DispatchMode| {
        let mut s = PushdownSession::builder(Btree::depth(8))
            .dispatch(mode)
            .build()
            .expect("session");
        s.run_closed_loop(4, 15 * MILLISECOND).0
    };
    let rb = run(DispatchMode::User);
    let rh = run(DispatchMode::DriverHook);
    let speedup = rh.chains_per_sec / rb.chains_per_sec;
    assert!(
        speedup > 1.5,
        "depth-8 driver hook should clearly win: {speedup:.2}x"
    );
}

// --- Deprecated shims stay functional ------------------------------------------

#[test]
#[allow(deprecated)]
fn legacy_btree_facade_still_works() {
    use bpfstor::core::StorageBpfBuilder;

    let mut env = StorageBpfBuilder::new()
        .btree_depth(4)
        .dispatch(DispatchMode::DriverHook)
        .build()
        .expect("env");
    assert!(env.lookup_checked(1).expect("before").found);
    let status = env.invalidate_and_rearm().expect("protocol");
    assert!(
        matches!(status, ChainStatus::ExtentMiss | ChainStatus::Invalidated),
        "{status:?}"
    );
    let hit = env.lookup_checked(1).expect("after rearm");
    assert!(hit.found, "lookups work against the relocated file");
    let (report, stats) = env.bench_lookups(2, 5 * MILLISECOND);
    assert_eq!(stats.mismatches, 0);
    assert_eq!(report.errors, 0);
}

// --- Queue-accurate device path -------------------------------------------------

#[test]
fn session_queue_knobs_backpressure_and_coalescing() {
    // A one-slot NVMe ring under 32 in-flight SQEs: submissions park
    // and retry (visible as rejections), every lookup still completes
    // correctly, and throughput degrades instead of panicking.
    let run = |qd: usize, irq_us: u64, irq_depth: u32| {
        let mut s = PushdownSession::builder(Btree::depth(4).max_chains(64))
            .dispatch(DispatchMode::DriverHook)
            .queue_depth(qd)
            .irq_coalescing(irq_us, irq_depth)
            .build()
            .expect("session");
        let (report, stats) = s.run_uring(1, 32, SECOND);
        assert_eq!(stats.completed, 64, "qd={qd}: every lookup completes");
        assert_eq!(stats.mismatches, 0, "qd={qd}");
        assert_eq!(stats.errors, 0, "qd={qd}");
        report
    };
    let shallow = run(2, 0, 1);
    let deep = run(4096, 0, 1);
    assert!(
        shallow.device.rejected > 0,
        "one-slot ring must backpressure"
    );
    assert_eq!(deep.device.rejected, 0);
    assert!(
        shallow.iops < deep.iops,
        "shallow ring serializes the device"
    );

    // Coalescing reaps many CQEs per interrupt without losing lookups.
    let coalesced = run(4096, 8, 8);
    assert!(
        coalesced.device.irqs < deep.device.irqs,
        "coalescing aggregates interrupts: {} vs {}",
        coalesced.device.irqs,
        deep.device.irqs
    );
}

#[test]
#[should_panic(expected = "irq_coalesce_depth 0 can never fire")]
fn zero_coalescing_depth_is_rejected_loudly() {
    // Regression: depth 0 used to be silently clamped to 1 deep inside
    // the machine, making "no coalescing" configs lie about themselves.
    let _ = PushdownSession::builder(Btree::depth(3)).irq_coalescing(8, 0);
}

#[test]
fn all_reap_modes_complete_the_same_lookups() {
    use bpfstor::core::ReapMode;
    let run = |mode: ReapMode| {
        let mut s = PushdownSession::builder(Btree::depth(4).max_chains(64))
            .dispatch(DispatchMode::DriverHook)
            .reap_mode(mode)
            .build()
            .expect("session");
        let (report, stats) = s.run_uring(1, 32, SECOND);
        assert_eq!(stats.completed, 64, "every lookup completes");
        assert_eq!(stats.mismatches, 0);
        assert_eq!(stats.errors, 0);
        report
    };
    let irq = run(ReapMode::Interrupt);
    let adaptive = run(ReapMode::AdaptiveIrq(Default::default()));
    let polled = run(ReapMode::Polled(Default::default()));
    let hybrid = run(ReapMode::Hybrid(Default::default()));
    for r in [&adaptive, &polled, &hybrid] {
        assert_eq!(r.device.cqes, irq.device.cqes, "same completions per mode");
    }
    assert_eq!(polled.trace.irqs, 0, "polled mode never interrupts");
    assert!(
        hybrid.reaper.mode_transitions >= 1,
        "32-deep load flips hybrid"
    );
}

// --- The journaled write path: mixed read/write workloads ---------------------

mod write_mixes {
    use super::*;
    use bpfstor::core::YcsbMix;
    use bpfstor::workload::OpMix;

    fn mix_entries() -> Vec<(u64, Vec<u8>)> {
        (0..600u64)
            .map(|i| {
                let mut v = vec![0u8; 48];
                v[..8].copy_from_slice(&(i * 31).to_le_bytes());
                (i * 3, v)
            })
            .collect()
    }

    /// The acceptance scenario: the paper's 40r/40u/20i TokuDB mix runs
    /// end to end in ALL THREE dispatch modes, with writes really going
    /// through the rings (nonzero write doorbells and write CQEs) and
    /// every read still checking out against the table.
    #[test]
    fn tokudb_40_40_20_runs_in_all_three_modes() {
        for mode in DispatchMode::ALL {
            let mut s = PushdownSession::builder(
                YcsbMix::new(mix_entries(), OpMix::paper_tokudb(), 0x40_40_20).max_chains(300),
            )
            .dispatch(mode)
            .build()
            .expect("session");
            let (report, stats) = s.run_closed_loop(4, SECOND);
            assert_eq!(stats.completed, 300, "{mode:?}");
            assert_eq!(
                stats.mismatches, 0,
                "{mode:?}: reads stay correct under writes"
            );
            assert_eq!(stats.errors, 0, "{mode:?}");
            assert!(stats.writes > 0, "{mode:?}: the mix produced writes");
            assert!(
                (0.5..0.7).contains(&(stats.writes as f64 / 300.0)),
                "{mode:?}: ~60% of a 40/40/20 mix is writes, got {}",
                stats.writes
            );
            assert!(
                report.device.write_doorbells > 0,
                "{mode:?}: write submissions rang doorbells"
            );
            assert!(
                report.device.write_cqes > 0,
                "{mode:?}: write completions were reaped"
            );
            assert!(report.device.flushes > 0, "{mode:?}: fsyncs hit the device");
            assert_eq!(
                report.write_latency.count(),
                stats.writes,
                "{mode:?}: every write chain recorded write latency"
            );
            assert_eq!(report.errors, 0, "{mode:?}");
        }
    }

    /// YCSB-A (50/50) and YCSB-B (95/5) complete through both submission
    /// paths (sync closed-loop and io_uring batches) in every mode.
    #[test]
    fn ycsb_a_and_b_run_sync_and_uring_in_all_modes() {
        for mix in [OpMix::ycsb_a(), OpMix::ycsb_b()] {
            for mode in DispatchMode::ALL {
                for uring in [false, true] {
                    let mut s = PushdownSession::builder(
                        YcsbMix::new(mix_entries(), mix, 0xAB).max_chains(160),
                    )
                    .dispatch(mode)
                    .build()
                    .expect("session");
                    let (report, stats) = if uring {
                        s.run_uring(2, 4, SECOND)
                    } else {
                        s.run_closed_loop(2, SECOND)
                    };
                    assert_eq!(stats.completed, 160, "{mix:?} {mode:?} uring={uring}");
                    assert_eq!(stats.mismatches, 0, "{mix:?} {mode:?} uring={uring}");
                    assert_eq!(stats.errors, 0, "{mix:?} {mode:?} uring={uring}");
                    assert!(stats.writes > 0, "{mix:?} {mode:?} uring={uring}");
                    assert!(
                        report.device.write_cqes > 0,
                        "{mix:?} {mode:?} uring={uring}"
                    );
                    assert_eq!(
                        stats.writes + stats.hits + stats.misses,
                        160,
                        "{mix:?} {mode:?} uring={uring}: chains partition into reads and writes"
                    );
                }
            }
        }
    }

    /// Writes contending for SQ slots must cost readers tail latency:
    /// at the same queue depth, the write-heavy mix's p99 READ latency
    /// is strictly above the read-only mix's, in every dispatch mode.
    #[test]
    fn write_heavy_mix_raises_read_p99_at_same_queue_depth() {
        let run = |mode: DispatchMode, mix: OpMix| {
            let mut s =
                PushdownSession::builder(YcsbMix::new(mix_entries(), mix, 77).max_chains(400))
                    .dispatch(mode)
                    .queue_depth(8)
                    .build()
                    .expect("session");
            let (report, stats) = s.run_closed_loop(4, SECOND);
            assert_eq!(stats.mismatches, 0);
            assert_eq!(stats.errors, 0);
            assert!(report.read_latency.count() > 0, "reads recorded");
            report.read_latency.quantile(0.99)
        };
        for mode in DispatchMode::ALL {
            let read_only = run(mode, OpMix::ycsb_c());
            let write_heavy = run(mode, OpMix::paper_tokudb());
            assert!(
                write_heavy > read_only,
                "{mode:?}: p99 read latency must rise under writes: {write_heavy} !> {read_only}"
            );
        }
    }

    /// The session's direct write surface: bytes through the rings, an
    /// fsync barrier, and the journal committed.
    #[test]
    fn session_write_surface_journals_through_the_rings() {
        let mut s = PushdownSession::builder(Btree::depth(3))
            .dispatch(DispatchMode::DriverHook)
            .build()
            .expect("session");
        let before = s.machine().device_stats();
        let (lat, ios) = s.write(1 << 20, &vec![0x5Au8; 1024], true).expect("write");
        assert!(lat > 0);
        assert_eq!(ios, 2, "one merged 2-block write command + flush");
        let after = s.machine().device_stats();
        assert_eq!(after.writes - before.writes, 1);
        assert_eq!(after.flushes - before.flushes, 1);
        assert!(after.write_doorbells > before.write_doorbells);
        let j = s.machine().fs().journal();
        assert!(!j.in_transaction(), "fsync committed the txn");
        assert_eq!(s.stats().writes, 1);
        assert_eq!(s.stats().bytes_written, 1024);
        // Reads on the same session still work afterwards.
        let hit = s.lookup(1).expect("lookup");
        assert!(hit.found);
    }
}

// --- LSM end to end: flush/compaction through the rings, pushdown reads -------

mod lsm_end_to_end {
    use super::*;
    use bpfstor::core::{sst_get_program, MachineLsmIo, SstGetDriver};
    use bpfstor::kernel::{
        ChainDriver, ChainOutcome, ChainStart, ChainVerdict, Machine, MachineConfig, Mutation,
        UserNext,
    };
    use bpfstor::lsm::{LsmConfig, LsmTree, BLOCK};
    use bpfstor::sim::SimRng;

    const VS: usize = 64;

    fn value_for(key: u64) -> Vec<u8> {
        let mut v = vec![0u8; VS];
        v[..8].copy_from_slice(&key.wrapping_mul(0xBEEF17).to_le_bytes());
        v
    }

    /// Delegating driver that applies the §4 rearm-and-retry protocol on
    /// top of `SstGetDriver` (the kernel reruns the snapshot ioctl and
    /// restarts the chain).
    struct RetrySst(SstGetDriver);

    impl ChainDriver for RetrySst {
        fn mode(&self) -> DispatchMode {
            self.0.mode
        }
        fn next_chain(&mut self, t: usize, rng: &mut SimRng) -> Option<ChainStart> {
            self.0.next_chain(t, rng)
        }
        fn user_step(
            &mut self,
            t: usize,
            token: &bpfstor::kernel::ChainToken,
            data: &[u8],
        ) -> UserNext {
            self.0.user_step(t, token, data)
        }
        fn chain_done(&mut self, t: usize, outcome: &ChainOutcome) -> ChainVerdict {
            if outcome.status.is_rearmable() && outcome.attempts < 3 {
                return ChainVerdict::RearmRetry;
            }
            self.0.chain_done(t, outcome)
        }
    }

    /// The cold-SSTable-get workload, truly end to end: inserts buffer
    /// in the memtable, flushes write SSTables through the SQ/CQ rings
    /// (journaled, fsync-barriered), compactions read and rewrite
    /// tables through the same rings — and then pushdown reads run
    /// against the freshly written tables in all three dispatch modes.
    #[test]
    fn inserts_flush_then_pushdown_reads_in_all_modes() {
        let mut m = Machine::new(MachineConfig::default());
        let mut lsm = LsmTree::new(LsmConfig {
            memtable_limit: 8 * 1024,
            level_trigger: 3,
        });
        {
            let mut io = MachineLsmIo::new(&mut m);
            for key in 0..1_500u64 {
                lsm.put_io(&mut io, key * 2, value_for(key * 2))
                    .expect("put");
            }
            lsm.flush_io(&mut io).expect("flush");
        }
        let st = m.device_stats();
        assert!(st.writes > 0, "flush images went through the rings");
        assert!(st.flushes > 0, "every table was fsync-barriered");
        assert!(st.write_doorbells > 0 && st.write_cqes > 0);
        assert!(lsm.stats().compactions > 0, "enough tables to compact");
        assert!(
            st.reads > 0,
            "table opens + compaction inputs were timed ring reads"
        );

        // Pick the biggest live table and probe it cold in every mode.
        let table = lsm
            .levels()
            .iter()
            .flatten()
            .max_by_key(|t| t.footer.nkeys)
            .expect("a live table");
        let name = table.name.clone();
        let footer_off = (table.file_blocks() - 1) * BLOCK as u64;
        let (min_key, max_key) = (table.footer.min_key, table.footer.max_key);
        let keys: Vec<u64> = (0..60u64)
            .map(|i| min_key + (i * (max_key - min_key) / 60) / 2 * 2)
            .chain([max_key + 7])
            .collect();
        let expect: Vec<Option<Vec<u8>>> = keys
            .iter()
            .map(|k| {
                if *k >= min_key && *k <= max_key && *k % 2 == 0 {
                    Some(value_for(*k))
                } else {
                    None
                }
            })
            .collect();
        for mode in DispatchMode::ALL {
            let fd = m.open(&name, true).expect("open");
            if mode != DispatchMode::User {
                m.install(fd, sst_get_program(VS as u32), 0)
                    .expect("install");
            }
            let mut d = SstGetDriver::new(fd, mode, footer_off, keys.clone(), expect.clone());
            let report = m.run_closed_loop(1, SECOND, &mut d);
            assert_eq!(d.stats.completed, keys.len() as u64, "{mode:?}");
            assert_eq!(
                d.stats.mismatches, 0,
                "{mode:?}: pushdown over a freshly flushed table agrees with the oracle"
            );
            assert_eq!(d.stats.errors, 0, "{mode:?}");
            assert!(d.stats.hits > 0 && d.stats.misses > 0, "{mode:?}");
            assert_eq!(report.errors, 0, "{mode:?}");
        }
    }

    /// Mid-run extent remap on a freshly written SSTable: the relocation
    /// invalidates the NVMe-layer snapshot while driver-hook chains are
    /// in flight; the rearm-and-retry machinery (PR 1) restarts them and
    /// every lookup still completes correctly.
    #[test]
    fn mid_run_remap_of_fresh_sstable_exercises_rearm_retry() {
        let mut m = Machine::new(MachineConfig::default());
        let mut lsm = LsmTree::new(LsmConfig {
            memtable_limit: 64 * 1024,
            level_trigger: 8,
        });
        {
            let mut io = MachineLsmIo::new(&mut m);
            for key in 0..800u64 {
                lsm.put_io(&mut io, key, value_for(key)).expect("put");
            }
            lsm.flush_io(&mut io).expect("flush");
        }
        let table = &lsm.levels()[0][0];
        let name = table.name.clone();
        let footer_off = (table.file_blocks() - 1) * BLOCK as u64;
        let keys: Vec<u64> = (0..400u64).map(|i| (i * 13) % 800).collect();
        let expect: Vec<Option<Vec<u8>>> = keys.iter().map(|k| Some(value_for(*k))).collect();
        let fd = m.open(&name, true).expect("open");
        m.install(fd, sst_get_program(VS as u32), 0)
            .expect("install");
        // Defragment the table's extents shortly into the run.
        let at = m.now + 100_000;
        m.schedule_mutation(at, Mutation::Relocate { name });
        let mut d = RetrySst(SstGetDriver::new(
            fd,
            DispatchMode::DriverHook,
            footer_off,
            keys.clone(),
            expect,
        ));
        let report = m.run_closed_loop(2, SECOND, &mut d);
        assert_eq!(d.0.stats.completed, keys.len() as u64);
        assert_eq!(
            d.0.stats.mismatches, 0,
            "relocated blocks still decode right"
        );
        assert_eq!(d.0.stats.errors, 0, "retry absorbed every invalidation");
        assert!(
            report.rearm_retries > 0,
            "the remap really hit in-flight chains"
        );
    }
}

// --- Pushdown over fabric (NVMe-oF-style remote queues) ---------------------

/// A fixed-latency fabric link for deterministic latency arithmetic.
fn test_link(one_way: u64) -> bpfstor::kernel::FabricConfig {
    bpfstor::kernel::FabricConfig {
        to_target: bpfstor::sim::LatencyDist::Constant(one_way),
        to_host: bpfstor::sim::LatencyDist::Constant(one_way),
        target_proc_ns: 0,
        inflight_cap: 32,
        ..bpfstor::kernel::FabricConfig::contention_defaults()
    }
}

#[test]
fn remote_modes_stay_correct_on_every_workload() {
    for mode in [DispatchMode::Remote, DispatchMode::DriverHook] {
        let mut s = PushdownSession::builder(Btree::depth(4).max_chains(20))
            .dispatch(mode)
            .fabric(test_link(8_000))
            .build()
            .expect("btree session");
        let (report, stats) = s.run_closed_loop(2, SECOND);
        assert_eq!(stats.completed, 20, "btree {mode:?}");
        assert_eq!(stats.mismatches, 0, "btree {mode:?}");
        assert_eq!(stats.errors, 0, "btree {mode:?}");
        assert_eq!(report.errors, 0, "btree {mode:?}");
        assert!(report.fabric.capsules_sent > 0, "traffic crossed the wire");

        let mut s = PushdownSession::builder(Chase::hops(6).max_chains(12))
            .dispatch(mode)
            .fabric(test_link(8_000))
            .build()
            .expect("chase session");
        let (report, stats) = s.run_uring(1, 4, SECOND);
        assert_eq!(stats.completed, 12, "chase {mode:?}");
        assert_eq!(stats.mismatches, 0, "chase {mode:?}");
        assert_eq!(report.errors, 0, "chase {mode:?}");
    }
}

#[test]
fn fabric_lookup_returns_the_same_value_as_local() {
    let value_at = |mode: DispatchMode, fabric: bool| {
        let mut b = PushdownSession::builder(Btree::depth(3));
        b = b.dispatch(mode);
        if fabric {
            b = b.fabric(test_link(5_000));
        }
        let mut s = b.build().expect("session");
        let out = s.lookup(42).expect("lookup");
        assert!(out.found);
        out.output.expect("value")
    };
    let local = value_at(DispatchMode::User, false);
    assert_eq!(value_at(DispatchMode::Remote, true), local);
    assert_eq!(value_at(DispatchMode::DriverHook, true), local);
}

#[test]
fn pushdown_elides_fabric_round_trips_on_dependency_chains() {
    const ONE_WAY: u64 = 40_000;
    const HOPS: u64 = 8;
    let mean = |mode: DispatchMode| {
        let mut s = PushdownSession::builder(Chase::hops(HOPS).max_chains(10))
            .dispatch(mode)
            .fabric(test_link(ONE_WAY))
            .build()
            .expect("session");
        let (report, stats) = s.run_closed_loop(1, SECOND);
        assert_eq!(stats.mismatches, 0);
        assert_eq!(stats.errors, 0);
        report.mean_latency()
    };
    let no_pushdown = mean(DispatchMode::Remote);
    let pushdown = mean(DispatchMode::DriverHook);
    let rtt = (2 * ONE_WAY) as f64;
    assert!(
        no_pushdown - pushdown >= (HOPS - 1) as f64 * rtt * 0.999,
        "pushdown must elide {} round trips: nopd {no_pushdown}, pd {pushdown}",
        HOPS - 1
    );
}

#[test]
fn fabric_pushdown_survives_relocation_through_auto_retry() {
    // The §4 invalidation protocol still works when the snapshot lives
    // on the target: the error returns as a capsule, the session
    // re-arms, and the retried chains succeed.
    let mut s = PushdownSession::builder(Chase::hops(5).max_chains(40))
        .dispatch(DispatchMode::DriverHook)
        .fabric(test_link(6_000))
        .retry_budget(3)
        .build()
        .expect("session");
    s.schedule_relocation(2 * MILLISECOND);
    let (report, stats) = s.run_closed_loop(2, SECOND);
    assert_eq!(stats.completed, 40);
    assert_eq!(stats.mismatches, 0);
    assert_eq!(stats.errors, 0, "auto-retry absorbs the invalidation");
    assert_eq!(report.errors, 0);
}
