//! Property-based tests over the core data structures and, most
//! importantly, the verifier's soundness contract: **a program the
//! verifier accepts never traps at runtime**.

use proptest::prelude::*;

use bpfstor::btree::tree::{build_pages, lookup, step_on_page, Step};
use bpfstor::btree::{Node, FANOUT_MAX};
use bpfstor::core::{btree_lookup_program, value_of};
use bpfstor::fs::{ExtFs, Extent, ExtentTree};
use bpfstor::lsm::sstable::{build_image, data_block_entries, Footer};
use bpfstor::lsm::BLOCK;
use bpfstor::sim::Histogram;
use bpfstor::vm::insn::{decode, encode, Insn};
use bpfstor::vm::{
    action, compile, verify, Asm, MapSet, Program, RecordingEnv, RunCtx, Trap, Vm, Width,
};

// --- VM: encode/decode ---------------------------------------------------------

proptest! {
    #[test]
    fn insn_wire_roundtrip(
        ops in proptest::collection::vec((0u8..=255, 0u8..=10, 0u8..=10, any::<i16>(), any::<i32>()), 1..50)
    ) {
        // Wide opcodes need a pair; filter them out of the random stream
        // and append a canonical pair to still exercise that path.
        let mut insns: Vec<Insn> = ops
            .into_iter()
            .map(|(op, dst, src, off, imm)| Insn::new(op, dst, src, off, imm))
            .filter(|i| i.op != bpfstor::vm::insn::OP_LD_IMM64 && i.op != 0)
            .collect();
        let [lo, hi] = Insn::ld_imm64(3, 0xDEAD_BEEF_0BAD_F00D);
        insns.push(lo);
        insns.push(hi);
        let bytes = encode(&insns);
        let back = decode(&bytes).expect("roundtrip");
        prop_assert_eq!(back, insns);
    }
}

// --- VM: ALU semantics vs a reference evaluator ---------------------------------

#[derive(Debug, Clone)]
enum AluOp {
    AddImm(i32),
    SubImm(i32),
    MulImm(i32),
    DivImm(i32),
    AndImm(i32),
    OrImm(i32),
    XorImm(i32),
    Lsh(u8),
    Rsh(u8),
    Arsh(u8),
    Neg,
}

fn alu_strategy() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        any::<i32>().prop_map(AluOp::AddImm),
        any::<i32>().prop_map(AluOp::SubImm),
        any::<i32>().prop_map(AluOp::MulImm),
        any::<i32>().prop_map(AluOp::DivImm),
        any::<i32>().prop_map(AluOp::AndImm),
        any::<i32>().prop_map(AluOp::OrImm),
        any::<i32>().prop_map(AluOp::XorImm),
        (0u8..64).prop_map(AluOp::Lsh),
        (0u8..64).prop_map(AluOp::Rsh),
        (0u8..64).prop_map(AluOp::Arsh),
        Just(AluOp::Neg),
    ]
}

fn reference_eval(start: u64, ops: &[AluOp]) -> u64 {
    let mut v = start;
    for op in ops {
        v = match op {
            AluOp::AddImm(i) => v.wrapping_add(*i as i64 as u64),
            AluOp::SubImm(i) => v.wrapping_sub(*i as i64 as u64),
            AluOp::MulImm(i) => v.wrapping_mul(*i as i64 as u64),
            AluOp::DivImm(i) => v.checked_div(*i as i64 as u64).unwrap_or(0),
            AluOp::AndImm(i) => v & (*i as i64 as u64),
            AluOp::OrImm(i) => v | (*i as i64 as u64),
            AluOp::XorImm(i) => v ^ (*i as i64 as u64),
            AluOp::Lsh(s) => v.wrapping_shl(*s as u32),
            AluOp::Rsh(s) => v.wrapping_shr(*s as u32),
            AluOp::Arsh(s) => ((v as i64).wrapping_shr(*s as u32)) as u64,
            AluOp::Neg => (v as i64).wrapping_neg() as u64,
        };
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn alu_matches_reference(
        start in any::<u64>(),
        ops in proptest::collection::vec(alu_strategy(), 0..24)
    ) {
        let mut a = Asm::new();
        a.ld_imm64(0, start);
        for op in &ops {
            match op {
                AluOp::AddImm(i) => a.add64_imm(0, *i),
                AluOp::SubImm(i) => a.sub64_imm(0, *i),
                AluOp::MulImm(i) => a.mul64_imm(0, *i),
                AluOp::DivImm(i) => a.div64_imm(0, *i),
                AluOp::AndImm(i) => a.and64_imm(0, *i),
                AluOp::OrImm(i) => a.or64_imm(0, *i),
                AluOp::XorImm(i) => a.xor64_imm(0, *i),
                AluOp::Lsh(s) => a.lsh64_imm(0, *s as i32),
                AluOp::Rsh(s) => a.rsh64_imm(0, *s as i32),
                AluOp::Arsh(s) => a.arsh64_imm(0, *s as i32),
                AluOp::Neg => a.neg64(0),
            };
        }
        a.exit();
        let prog = Program::new(a.finish().expect("assembles"));
        let mut maps = MapSet::instantiate(&prog.maps).expect("maps");
        let mut env = RecordingEnv::default();
        let mut scratch = [0u8; 8];
        let out = Vm::new()
            .run(
                &prog,
                RunCtx { data: &[], file_off: 0, hop: 0, flags: 0, scratch: &mut scratch },
                &mut maps,
                &mut env,
            )
            .expect("straight-line ALU programs never trap");
        prop_assert_eq!(out.ret, reference_eval(start, &ops));
    }
}

// --- Verifier soundness: accepted programs never trap ----------------------------

/// A tiny generator of arbitrary-ish programs. Most are rejected by the
/// verifier; the property only concerns the accepted ones.
fn arb_program() -> impl Strategy<Value = Program> {
    let insn = prop_oneof![
        // ALU imm on r0-r5.
        (0u8..6, any::<i32>(), 0usize..7).prop_map(|(dst, imm, which)| {
            let mut a = Asm::new();
            match which {
                0 => a.mov64_imm(dst, imm),
                1 => a.add64_imm(dst, imm),
                2 => a.mul64_imm(dst, imm),
                3 => a.and64_imm(dst, imm),
                4 => a.rsh64_imm(dst, (imm & 63).abs()),
                5 => a.xor64_imm(dst, imm),
                _ => a.or64_imm(dst, imm),
            };
            a.finish().expect("fragment")
        }),
        // Reg-to-reg moves and arithmetic.
        (0u8..6, 0u8..6, 0usize..3).prop_map(|(dst, src, which)| {
            let mut a = Asm::new();
            match which {
                0 => a.mov64_reg(dst, src),
                1 => a.add64_reg(dst, src),
                _ => a.sub64_reg(dst, src),
            };
            a.finish().expect("fragment")
        }),
        // Stack traffic.
        (0u8..6, 1u8..=8).prop_map(|(reg, slot)| {
            let mut a = Asm::new();
            a.stx(Width::DW, 10, -8 * slot as i16, reg)
                .ldx(Width::DW, reg, 10, -8 * slot as i16);
            a.finish().expect("fragment")
        }),
        // Context loads.
        (2u8..6, 0usize..3).prop_map(|(dst, which)| {
            let mut a = Asm::new();
            match which {
                0 => a.ldx(Width::DW, dst, 1, bpfstor::vm::ctx_off::DATA),
                1 => a.ldx(Width::DW, dst, 1, bpfstor::vm::ctx_off::FILE_OFF),
                _ => a.ldx(Width::W, dst, 1, bpfstor::vm::ctx_off::HOP),
            };
            a.finish().expect("fragment")
        }),
        // Data access guarded by a bound check (sometimes mis-sized on
        // purpose: the verifier must catch those).
        (0i16..24, 1usize..9).prop_map(|(off, proven)| {
            let mut a = Asm::new();
            a.ldx(Width::DW, 2, 1, bpfstor::vm::ctx_off::DATA)
                .ldx(Width::DW, 3, 1, bpfstor::vm::ctx_off::DATA_END)
                .mov64_reg(4, 2)
                .add64_imm(4, proven as i32)
                .jgt_reg(4, 3, "skip")
                .ldx(Width::B, 5, 2, off)
                .label("skip")
                .mov64_imm(5, 0);
            a.finish().expect("fragment")
        }),
    ];
    (proptest::collection::vec(insn, 1..12)).prop_map(|frags| {
        let mut insns = Vec::new();
        for f in frags {
            insns.extend(f);
        }
        // Epilogue: r0 = 0; exit.
        let mut a = Asm::new();
        a.mov64_imm(0, 0).exit();
        insns.extend(a.finish().expect("epilogue"));
        Program::new(insns)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn verified_programs_never_trap(
        prog in arb_program(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        file_off in any::<u64>(),
        hop in any::<u32>(),
    ) {
        if verify(&prog).is_ok() {
            let mut maps = MapSet::instantiate(&prog.maps).expect("maps");
            let mut env = RecordingEnv::default();
            let mut scratch = [0u8; 256];
            let result = Vm::new().run(
                &prog,
                RunCtx { data: &data, file_off, hop, flags: 0, scratch: &mut scratch },
                &mut maps,
                &mut env,
            );
            prop_assert!(
                !matches!(
                    result,
                    Err(Trap::OutOfBounds { .. })
                        | Err(Trap::WriteToReadOnly { .. })
                        | Err(Trap::IllegalInsn { .. })
                        | Err(Trap::BadJump { .. })
                        | Err(Trap::FellThrough)
                ),
                "verified program trapped: {result:?}"
            );
        }
    }
}

// --- Engine differential: compiled execution is observationally identical --------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Every verified program must compile, and the compiled engine
    /// must be observationally identical to the interpreter: same
    /// return value, same retired-instruction count (so simulated cost
    /// charging is engine-independent), same helper effects, same
    /// scratch bytes, same traps.
    #[test]
    fn compiled_engine_matches_interpreter_on_verified_programs(
        prog in arb_program(),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        file_off in any::<u64>(),
        hop in any::<u32>(),
    ) {
        if verify(&prog).is_ok() {
            let compiled = compile(&prog).expect("verified programs always compile");
            let mut maps_i = MapSet::instantiate(&prog.maps).expect("maps");
            let mut maps_c = MapSet::instantiate(&prog.maps).expect("maps");
            let mut env_i = RecordingEnv::default();
            let mut env_c = RecordingEnv::default();
            let mut scratch_i = [0u8; 256];
            let mut scratch_c = [0u8; 256];
            let ri = Vm::new().run(
                &prog,
                RunCtx { data: &data, file_off, hop, flags: 0, scratch: &mut scratch_i },
                &mut maps_i,
                &mut env_i,
            );
            let rc = compiled.run(
                RunCtx { data: &data, file_off, hop, flags: 0, scratch: &mut scratch_c },
                &mut maps_c,
                &mut env_c,
            );
            match (&ri, &rc) {
                (Ok(oi), Ok(oc)) => {
                    prop_assert_eq!(oi.ret, oc.ret, "return value");
                    prop_assert_eq!(oi.insns, oc.insns, "retired-instruction count");
                    prop_assert_eq!(oi.helper_calls, oc.helper_calls, "helper calls");
                }
                (Err(ti), Err(tc)) => prop_assert_eq!(ti, tc, "identical traps"),
                other => prop_assert!(false, "engines diverged: {other:?}"),
            }
            prop_assert_eq!(&scratch_i[..], &scratch_c[..], "scratch effects");
            prop_assert_eq!(&env_i.resubmits, &env_c.resubmits);
            prop_assert_eq!(&env_i.emitted, &env_c.emitted);
            prop_assert_eq!(&env_i.traces, &env_c.traces);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Wild instruction streams (unverified, usually trap-inducing):
    /// when the compiler accepts one, both engines must produce the
    /// same result — including the same runtime trap at the same
    /// budget. When the compiler declines, the machine falls back to
    /// the interpreter, which must still run without panicking.
    #[test]
    fn unverified_programs_trap_identically_or_fall_back(
        ops in proptest::collection::vec(
            (0u8..=255, 0u8..11, 0u8..11, any::<i16>(), any::<i32>()),
            1..24
        ),
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        const BUDGET: u64 = 10_000;
        let insns: Vec<Insn> = ops
            .into_iter()
            .map(|(op, dst, src, off, imm)| Insn::new(op, dst, src, off, imm))
            .collect();
        let prog = Program::new(insns);
        let mut maps_i = MapSet::instantiate(&prog.maps).expect("maps");
        let mut env_i = RecordingEnv::default();
        let mut scratch_i = [0u8; 256];
        let ri = Vm::with_budget(BUDGET).run(
            &prog,
            RunCtx { data: &data, file_off: 0, hop: 0, flags: 0, scratch: &mut scratch_i },
            &mut maps_i,
            &mut env_i,
        );
        match compile(&prog) {
            Ok(cp) => {
                let mut maps_c = MapSet::instantiate(&prog.maps).expect("maps");
                let mut env_c = RecordingEnv::default();
                let mut scratch_c = [0u8; 256];
                let rc = cp.run_budgeted(
                    BUDGET,
                    RunCtx { data: &data, file_off: 0, hop: 0, flags: 0, scratch: &mut scratch_c },
                    &mut maps_c,
                    &mut env_c,
                );
                prop_assert_eq!(&ri, &rc, "engines agree on unverified programs");
                prop_assert_eq!(&scratch_i[..], &scratch_c[..]);
                prop_assert_eq!(&env_i.emitted, &env_c.emitted);
            }
            Err(_) => {
                // Declined: interpreter fallback. The interpreter's
                // result above already ran without panicking; nothing
                // further to compare.
            }
        }
    }
}

// --- B-tree: BPF program equals the native oracle --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn bpf_btree_step_matches_native(
        raw_keys in proptest::collection::btree_set(0u64..1_000_000, 1..(FANOUT_MAX + 1)),
        level in 0u8..4,
        probe in 0u64..1_100_000,
    ) {
        let keys: Vec<u64> = raw_keys.into_iter().collect();
        let slots: Vec<u64> = (0..keys.len() as u64).map(|i| i + 5).collect();
        let page = Node::new(level, keys, slots).encode();
        let native = step_on_page(&page, probe).expect("native");

        let prog = btree_lookup_program();
        let mut maps = MapSet::instantiate(&prog.maps).expect("maps");
        let mut env = RecordingEnv::default();
        let mut scratch = [0u8; 256];
        scratch[..8].copy_from_slice(&probe.to_le_bytes());
        let out = Vm::new()
            .run(
                &prog,
                RunCtx { data: &page, file_off: 0, hop: 0, flags: 0, scratch: &mut scratch },
                &mut maps,
                &mut env,
            )
            .expect("program never traps on valid pages");
        match native {
            Step::Next(off) => {
                prop_assert_eq!(out.ret, action::ACT_RESUBMIT);
                prop_assert_eq!(env.resubmits, vec![off]);
            }
            Step::Found(v) => {
                prop_assert_eq!(out.ret, action::ACT_EMIT);
                prop_assert_eq!(env.emitted, v.to_le_bytes().to_vec());
            }
            Step::Missing => prop_assert_eq!(out.ret, action::ACT_HALT),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn btree_lookup_matches_btreemap(
        raw_keys in proptest::collection::btree_set(0u64..100_000, 2..400),
        fanout in 2usize..16,
        probes in proptest::collection::vec(0u64..110_000, 20),
    ) {
        let keys: Vec<u64> = raw_keys.iter().copied().collect();
        let values: Vec<u64> = keys.iter().map(|k| value_of(*k)).collect();
        let reference: std::collections::BTreeMap<u64, u64> =
            keys.iter().copied().zip(values.iter().copied()).collect();
        let (mut pages, info) = build_pages(&keys, &values, fanout).expect("build");
        for probe in probes {
            let (got, reads) =
                lookup(&mut pages, info.root_block, info.depth, probe).expect("lookup");
            prop_assert_eq!(got, reference.get(&probe).copied());
            prop_assert_eq!(reads, info.depth);
        }
    }
}

// --- Extent tree invariants --------------------------------------------------------

proptest! {
    #[test]
    fn extent_tree_insert_remove_invariants(
        ops in proptest::collection::vec((0u64..256, 1u64..16, any::<bool>()), 1..60)
    ) {
        let mut tree = ExtentTree::new();
        let mut mapped = std::collections::BTreeMap::new(); // logical -> physical
        let mut next_phys = 10_000u64;
        for (lb, len, remove) in ops {
            if remove {
                tree.remove_range(lb, len);
                for b in lb..lb + len {
                    mapped.remove(&b);
                }
            } else {
                // Only insert blocks not currently mapped (the FS layer
                // guarantees this; overlapping inserts panic by design).
                for b in lb..lb + len {
                    if let std::collections::btree_map::Entry::Vacant(e) = mapped.entry(b) {
                        tree.insert(Extent { logical: b, physical: next_phys, len: 1 });
                        e.insert(next_phys);
                        next_phys += 2; // non-adjacent so merges stay rare
                    }
                }
            }
            // The tree agrees with the reference on every mapped block.
            prop_assert_eq!(tree.mapped_blocks(), mapped.len() as u64);
            for (b, p) in &mapped {
                let got = tree.lookup(*b).map(|(phys, _)| phys);
                prop_assert_eq!(got, Some(*p));
            }
        }
    }
}

// --- FS vs reference model -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn fs_matches_reference_model(
        ops in proptest::collection::vec(
            (0usize..3, 0u64..4, 0u64..50_000, proptest::collection::vec(any::<u8>(), 1..600)),
            1..40
        )
    ) {
        let mut fs = ExtFs::mkfs(1 << 16);
        let mut store = bpfstor::device::SectorStore::new();
        let mut reference: std::collections::HashMap<String, Vec<u8>> =
            std::collections::HashMap::new();
        for (op, file_idx, off, data) in ops {
            let name = format!("f{file_idx}");
            match op {
                // Write (creating on demand).
                0 => {
                    let ino = match fs.open(&name) {
                        Ok(i) => i,
                        Err(_) => fs.create(&name).expect("create"),
                    };
                    fs.write(ino, off, &data, &mut store).expect("write");
                    let entry = reference.entry(name).or_default();
                    let end = off as usize + data.len();
                    if entry.len() < end {
                        entry.resize(end, 0);
                    }
                    entry[off as usize..end].copy_from_slice(&data);
                }
                // Truncate.
                1 => {
                    if let Ok(ino) = fs.open(&name) {
                        let new_size = off % 4_096;
                        fs.truncate(ino, new_size, &mut store).expect("truncate");
                        if let Some(entry) = reference.get_mut(&name) {
                            entry.truncate(new_size as usize);
                        }
                    }
                }
                // Unlink.
                _ => {
                    if fs.open(&name).is_ok() {
                        fs.unlink(&name).expect("unlink");
                        reference.remove(&name);
                    }
                }
            }
            // Full-content comparison for every live file.
            for (name, expect) in &reference {
                let ino = fs.open(name).expect("exists");
                prop_assert_eq!(fs.file_size(ino).expect("size"), expect.len() as u64);
                let got = fs.read(ino, 0, expect.len(), &mut store).expect("read");
                prop_assert_eq!(&got, expect);
            }
        }
    }
}

// --- SSTable roundtrip ------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn sstable_roundtrip(
        raw in proptest::collection::btree_map(0u64..1_000_000, proptest::collection::vec(any::<u8>(), 1..120), 1..300)
    ) {
        let entries: Vec<(u64, Vec<u8>)> = raw.into_iter().collect();
        let image = build_image(&entries).expect("build");
        prop_assert_eq!(image.len() % BLOCK, 0);
        let footer = Footer::decode(&image[image.len() - BLOCK..]).expect("footer");
        prop_assert_eq!(footer.nkeys, entries.len() as u64);
        // Reassemble every entry from the data blocks, in order.
        let mut all = Vec::new();
        for b in 0..footer.data_blocks as usize {
            all.extend(data_block_entries(&image[b * BLOCK..(b + 1) * BLOCK]).expect("block"));
        }
        prop_assert_eq!(all, entries);
    }
}

// --- Histogram quantiles vs exact reference -----------------------------------------------

proptest! {
    #[test]
    fn histogram_quantiles_are_accurate(
        mut values in proptest::collection::vec(1u64..10_000_000, 100..2_000)
    ) {
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        values.sort_unstable();
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            // Sound property for arbitrary data: the estimate must fall
            // between nearby exact order statistics (rank tolerance ±2,
            // covering ceil/floor conventions), expanded by the ~6.5%
            // worst-case log-bucket width.
            let n = values.len();
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let lo_exact = values[rank.saturating_sub(3)] as f64;
            let hi_exact = values[(rank + 1).min(n - 1)] as f64;
            let approx = h.quantile(q) as f64;
            prop_assert!(
                approx >= lo_exact / 1.07 && approx <= hi_exact * 1.07,
                "q={q} approx={approx} window=[{lo_exact}, {hi_exact}]"
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.max(), values[values.len() - 1]);
    }
}

// --- Journal crash-consistency: every record-boundary crash recovers a prefix ----

/// One random metadata-plane operation.
#[derive(Debug, Clone)]
enum FsOp {
    Write { file: u8, block: u8, blocks: u8 },
    Truncate { file: u8, blocks: u8 },
    Unlink { file: u8 },
    Fallocate { file: u8, block: u8, blocks: u8 },
}

fn fs_op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        5 => (0u8..3, 0u8..12, 1u8..5).prop_map(|(file, block, blocks)| FsOp::Write { file, block, blocks }),
        2 => (0u8..3, 0u8..8).prop_map(|(file, blocks)| FsOp::Truncate { file, blocks }),
        1 => (0u8..3).prop_map(|file| FsOp::Unlink { file }),
        2 => (0u8..3, 0u8..12, 1u8..5).prop_map(|(file, block, blocks)| FsOp::Fallocate { file, block, blocks }),
    ]
}

/// Everything journal replay must reproduce: directory, sizes, extents,
/// and the allocator's free-space accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FsMeta {
    files: Vec<(String, u64, u64, Vec<bpfstor::fs::Extent>)>,
    free: u64,
}

fn fs_meta(fs: &bpfstor::fs::ExtFs) -> FsMeta {
    let files = fs
        .readdir()
        .into_iter()
        .map(|(name, ino)| {
            (
                name,
                ino,
                fs.file_size(ino).expect("size"),
                fs.extents_snapshot(ino).expect("extents"),
            )
        })
        .collect();
    FsMeta {
        files,
        free: fs.free_blocks(),
    }
}

/// Applies `ops` from scratch, returning the fs plus the metadata
/// snapshot at every committed-transaction boundary (`snaps[t]` = state
/// after `t` transactions).
fn replay_ops(ops: &[FsOp]) -> (ExtFs, Vec<FsMeta>) {
    const NBLOCKS: u64 = 1 << 14;
    const BS: u64 = 512;
    let mut fs = ExtFs::mkfs(NBLOCKS);
    let mut store = bpfstor::device::SectorStore::new();
    let mut snaps = vec![fs_meta(&fs)];
    for op in ops {
        // Each arm commits AT MOST one transaction (a missing file costs
        // the op: it only creates), so txn boundaries line up with the
        // snapshots below.
        match op {
            FsOp::Write {
                file,
                block,
                blocks,
            } => {
                let name = format!("f{file}");
                match fs.open(&name) {
                    Ok(ino) => {
                        let data = vec![*block ^ *blocks; *blocks as usize * BS as usize];
                        let _ = fs.write(ino, *block as u64 * BS, &data, &mut store);
                    }
                    Err(_) => {
                        fs.create(&name).expect("create");
                    }
                }
            }
            FsOp::Truncate { file, blocks } => {
                if let Ok(ino) = fs.open(&format!("f{file}")) {
                    fs.truncate(ino, *blocks as u64 * BS, &mut store)
                        .expect("truncate");
                }
            }
            FsOp::Unlink { file } => {
                let name = format!("f{file}");
                if fs.open(&name).is_ok() {
                    fs.unlink(&name).expect("unlink");
                }
            }
            FsOp::Fallocate {
                file,
                block,
                blocks,
            } => {
                let name = format!("f{file}");
                match fs.open(&name) {
                    Ok(ino) => {
                        let _ = fs.fallocate(ino, *block as u64, *blocks as u64, &mut store);
                    }
                    Err(_) => {
                        fs.create(&name).expect("create");
                    }
                }
            }
        }
        let t = fs.journal().commit_points().len();
        // Ops always commit whole transactions; snapshot state at txn t.
        if t >= snaps.len() {
            snaps.resize(t + 1, fs_meta(&fs));
        }
        snaps[t] = fs_meta(&fs);
    }
    (fs, snaps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn journal_replay_after_any_crash_point_is_a_txn_prefix(
        ops in proptest::collection::vec(fs_op_strategy(), 1..18)
    ) {
        const NBLOCKS: u64 = 1 << 14;
        let (reference, snaps) = replay_ops(&ops);
        let total_records = reference.journal().len();
        let commit_points: Vec<usize> = reference.journal().commit_points().to_vec();
        prop_assert_eq!(
            total_records,
            *commit_points.last().unwrap_or(&0),
            "ops commit whole transactions; nothing dangles"
        );
        // Crash at EVERY record boundary: the recovered metadata must be
        // exactly the state after some prefix of committed transactions
        // — never a torn mix (e.g. a size without its extents).
        for k in 0..=total_records {
            let (crashed, _) = replay_ops(&ops);
            let recovered = crashed.crash_and_recover_at(NBLOCKS, k);
            let t = commit_points.iter().filter(|&&p| p <= k).count();
            prop_assert_eq!(
                fs_meta(&recovered),
                snaps[t].clone(),
                "crash after {} of {} records must recover exactly txn-prefix {}",
                k, total_records, t
            );
        }
    }
}

// --- Machine crash consistency under every commit policy --------------------------

/// Closed-loop driver for the machine-level crash tests: `writes`
/// journaled sector writes at successive offsets (every
/// `fsync_every`-th one fsynced, 0 = never), then one final pure fsync
/// when `final_fsync` is set — so everything logged is durable when the
/// run drains.
struct CrashWriters {
    fd: bpfstor::kernel::Fd,
    writes: u64,
    fsync_every: u64,
    final_fsync: bool,
    issued: u64,
    done: u64,
    errors: u64,
    mode: bpfstor::kernel::DispatchMode,
}

impl bpfstor::kernel::ChainDriver for CrashWriters {
    fn mode(&self) -> bpfstor::kernel::DispatchMode {
        self.mode
    }

    fn next_op(
        &mut self,
        _t: usize,
        _rng: &mut bpfstor::sim::SimRng,
    ) -> Option<bpfstor::kernel::ChainSpec> {
        use bpfstor::device::SECTOR_SIZE;
        if self.issued >= self.writes {
            if self.final_fsync {
                self.final_fsync = false;
                return Some(bpfstor::kernel::ChainSpec::Write(
                    bpfstor::kernel::WriteStart {
                        fd: self.fd,
                        file_off: 0,
                        data: Vec::new(),
                        fsync: true,
                        arg: u64::MAX,
                    },
                ));
            }
            return None;
        }
        let i = self.issued;
        self.issued += 1;
        let fsync = self.fsync_every != 0 && (i + 1).is_multiple_of(self.fsync_every);
        Some(bpfstor::kernel::ChainSpec::Write(
            bpfstor::kernel::WriteStart {
                fd: self.fd,
                file_off: i * SECTOR_SIZE as u64,
                data: vec![(i % 250) as u8 + 1; SECTOR_SIZE],
                fsync,
                arg: i,
            },
        ))
    }

    fn chain_done(
        &mut self,
        _t: usize,
        outcome: &bpfstor::kernel::ChainOutcome,
    ) -> bpfstor::kernel::ChainVerdict {
        self.done += 1;
        if !matches!(outcome.status, bpfstor::kernel::ChainStatus::Written(_)) {
            self.errors += 1;
        }
        bpfstor::kernel::ChainVerdict::Done
    }
}

/// Runs `writers` concurrent fsyncing writers under `policy` and
/// returns the drained machine.
fn run_crash_writers(
    policy: bpfstor::kernel::CommitPolicy,
    writers: usize,
    writes: u64,
    fsync_every: u64,
    final_fsync: bool,
    seed: u64,
) -> (bpfstor::kernel::Machine, bpfstor::kernel::RunReport) {
    run_crash_writers_on(
        policy,
        writers,
        writes,
        fsync_every,
        final_fsync,
        seed,
        bpfstor::kernel::TransportConfig::Local,
        bpfstor::kernel::DispatchMode::User,
    )
}

/// [`run_crash_writers`] over an arbitrary transport and dispatch mode
/// (the fabric variants put the fsync flush barrier on the far side of
/// the wire).
#[allow(clippy::too_many_arguments)]
fn run_crash_writers_on(
    policy: bpfstor::kernel::CommitPolicy,
    writers: usize,
    writes: u64,
    fsync_every: u64,
    final_fsync: bool,
    seed: u64,
    transport: bpfstor::kernel::TransportConfig,
    mode: bpfstor::kernel::DispatchMode,
) -> (bpfstor::kernel::Machine, bpfstor::kernel::RunReport) {
    use bpfstor::kernel::{Machine, MachineConfig};
    let cfg = MachineConfig {
        commit_policy: policy,
        seed,
        transport,
        // Match the crash-replay target so free-space accounting lines
        // up between live and recovered metadata.
        fs_blocks: 1 << 14,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg);
    m.create_file("wal.db", &[]).expect("create");
    let fd = m.open("wal.db", true).expect("open");
    let mut d = CrashWriters {
        fd,
        writes,
        fsync_every,
        final_fsync,
        issued: 0,
        done: 0,
        errors: 0,
        mode,
    };
    let report = m.run_closed_loop(writers, bpfstor::sim::SECOND, &mut d);
    assert_eq!(d.errors, 0, "write chains must complete cleanly");
    assert_eq!(d.done, writes + u64::from(final_fsync));
    (m, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn machine_crash_at_any_boundary_recovers_a_txn_prefix_under_every_policy(
        writers in 1usize..5,
        writes in 4u64..24,
        fsync_every in 1u64..4,
        max_wait_us in 5u64..60,
        seed in 0u64..1_000,
    ) {
        const NBLOCKS: u64 = 1 << 14;
        use bpfstor::kernel::CommitPolicy;
        let policies = [
            CommitPolicy::PerFsync,
            CommitPolicy::Group { max_wait_us, max_handles: writers as u32 },
            CommitPolicy::Writeback { flush_interval_us: 100 },
        ];
        for policy in policies {
            let (m, report) = run_crash_writers(policy, writers, writes, fsync_every, true, seed);
            let j = m.fs().journal();
            // Durability: the trailing pure fsync saw every record, so
            // the drained journal is fully committed under all policies.
            prop_assert_eq!(
                j.len(), j.committed_records().len(),
                "{:?}: final fsync must commit everything logged", policy
            );
            // Sharing never mints extra barriers; per-fsync never shares.
            let commit = report.commit;
            if policy == CommitPolicy::PerFsync {
                prop_assert_eq!(commit.commits, commit.fsyncs, "{:?}", policy);
                prop_assert_eq!(commit.barrier_joins, 0, "{:?}", policy);
            } else {
                prop_assert!(
                    commit.commits <= commit.fsyncs + commit.writeback_flushes,
                    "{:?}: {} commits for {} fsyncs", policy, commit.commits, commit.fsyncs
                );
            }
            // Crash at EVERY record boundary: recovery must land exactly
            // on the last commit point at or before the crash — a torn
            // transaction (shared barrier not yet durable) loses every
            // joined handle's records atomically, a durable one loses
            // none.
            let total = j.len();
            let commit_points: Vec<usize> = j.commit_points().to_vec();
            let live = fs_meta(m.fs());
            let at = |k: usize| fs_meta(&m.fs().clone().crash_and_recover_at(NBLOCKS, k));
            prop_assert_eq!(
                at(total), live.clone(),
                "{:?}: full-log replay must reproduce the live metadata", policy
            );
            let mut prefix = at(0);
            let mut next_cp = 0usize;
            for k in 0..=total {
                if commit_points.get(next_cp) == Some(&k) {
                    next_cp += 1;
                    prefix = at(k);
                }
                prop_assert_eq!(
                    at(k), prefix.clone(),
                    "{:?}: crash after {} of {} records must recover the \
                     txn prefix at commit point {:?}", policy, k, total,
                    commit_points.get(next_cp.wrapping_sub(1))
                );
            }
        }
        // Writeback with no application fsync at all: the background
        // timer alone must eventually make the journal durable — but
        // never ahead of its records (replay still reproduces the live
        // metadata exactly).
        let (m, report) = run_crash_writers(
            CommitPolicy::Writeback { flush_interval_us: 50 },
            writers, writes, 0, false, seed,
        );
        let j = m.fs().journal();
        prop_assert_eq!(j.len(), j.committed_records().len(), "writeback drains the journal");
        prop_assert!(report.commit.writeback_flushes >= 1, "the timer did the flushing");
        prop_assert_eq!(report.commit.fsyncs, 0);
        prop_assert_eq!(
            fs_meta(&m.fs().clone().crash_and_recover_at(NBLOCKS, j.len())),
            fs_meta(m.fs())
        );
        // Per-fsync with no fsyncs leaves the records pending: a crash
        // loses them, which is exactly the contract writeback tightens.
        let (m, _) = run_crash_writers(CommitPolicy::PerFsync, writers, writes, 0, false, seed);
        let j = m.fs().journal();
        prop_assert!(j.len() > j.committed_records().len(), "no fsync, nothing durable");
    }
}

// --- Ring invariants under random mixed read/write submission --------------------

/// One random driver action against the raw NVMe device.
#[derive(Debug, Clone)]
enum RingAction {
    SubmitRead { slba: u8 },
    SubmitWrite { slba: u8 },
    SubmitFlush,
    Doorbell,
    AdvanceAndIrq { ns: u16 },
}

fn ring_action_strategy() -> impl Strategy<Value = RingAction> {
    prop_oneof![
        4 => (0u8..64).prop_map(|slba| RingAction::SubmitRead { slba }),
        3 => (0u8..64).prop_map(|slba| RingAction::SubmitWrite { slba }),
        1 => Just(RingAction::SubmitFlush),
        3 => Just(RingAction::Doorbell),
        3 => (1u16..5_000).prop_map(|ns| RingAction::AdvanceAndIrq { ns }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn ring_invariants_hold_under_random_mixed_submission(
        actions in proptest::collection::vec(ring_action_strategy(), 1..120),
        depth in 2usize..10,
    ) {
        use bpfstor::device::{NvmeCommand, NvmeOp, NvmeDevice, QueueError, SECTOR_SIZE};
        use bpfstor::sim::SimRng;

        let mut profile = bpfstor::device::DeviceProfile::optane_gen2_p5800x();
        profile.queue_depth = depth;
        let cap = depth - 1;
        let mut dev = NvmeDevice::new(profile, 1, SimRng::seed(0xD1CE));
        let mut now: u64 = 0;
        let mut next_cid: u64 = 0;
        // The driver's model: tags handed out but not yet reaped, plus
        // commands a full SQ pushed back (parked, NOT dropped).
        let mut in_flight = std::collections::HashSet::new();
        let mut parked: Vec<NvmeCommand> = Vec::new();
        let mut accepted: u64 = 0;
        let mut reaped_cids = std::collections::HashSet::new();

        let submit = |dev: &mut NvmeDevice,
                          in_flight: &mut std::collections::HashSet<u64>,
                          accepted: &mut u64,
                          cmd: NvmeCommand| {
            let cid = cmd.cid;
            let outstanding_before = dev.outstanding(0);
            match dev.submit(0, cmd) {
                Ok(()) => {
                    prop_assert!(outstanding_before < cap, "accepted only below capacity");
                    prop_assert!(in_flight.insert(cid), "tag never double-allocated");
                    *accepted += 1;
                }
                Err(QueueError::SubmissionFull) => {
                    // Full SQ parks: the command is returned, not lost.
                    prop_assert_eq!(outstanding_before, cap, "reject only at capacity");
                }
                Err(e) => prop_assert!(false, "unexpected error {:?}", e),
            }
        };

        let mk = |cid: u64, action: &RingAction| -> NvmeCommand {
            let op = match action {
                RingAction::SubmitRead { slba } => NvmeOp::Read { slba: *slba as u64, nlb: 1 },
                RingAction::SubmitWrite { slba } => NvmeOp::Write {
                    slba: *slba as u64,
                    data: vec![cid as u8; SECTOR_SIZE],
                },
                _ => NvmeOp::Flush,
            };
            NvmeCommand { cid, op }
        };

        for action in &actions {
            match action {
                RingAction::SubmitRead { .. } | RingAction::SubmitWrite { .. } | RingAction::SubmitFlush => {
                    let cmd = mk(next_cid, action);
                    next_cid += 1;
                    let before = dev.outstanding(0);
                    if before >= cap {
                        parked.push(cmd); // driver-side parking on backpressure
                        dev.record_rejection();
                    } else {
                        submit(&mut dev, &mut in_flight, &mut accepted, cmd);
                    }
                }
                RingAction::Doorbell => {
                    dev.ring_doorbell(now, 0).expect("qp 0 exists");
                }
                RingAction::AdvanceAndIrq { ns } => {
                    now += *ns as u64;
                    dev.post_ready(now, 0);
                    for c in dev.reap(0, usize::MAX) {
                        prop_assert!(in_flight.remove(&c.cid), "one CQE per SQE, no ghosts");
                        prop_assert!(reaped_cids.insert(c.cid), "no duplicate CQE");
                    }
                    // Freed slots readmit parked commands, oldest first.
                    while dev.outstanding(0) < cap {
                        let Some(cmd) = parked.pop() else { break };
                        submit(&mut dev, &mut in_flight, &mut accepted, cmd);
                    }
                }
            }
            prop_assert!(dev.outstanding(0) <= cap, "outstanding never exceeds queue depth");
        }

        // Drain: ring, advance far, reap — until every accepted command
        // (including everything parked) has exactly one CQE.
        let mut guard = 0;
        while dev.outstanding(0) > 0 || !parked.is_empty() {
            dev.ring_doorbell(now, 0).expect("qp 0");
            now += 100_000;
            dev.post_ready(now, 0);
            for c in dev.reap(0, usize::MAX) {
                prop_assert!(in_flight.remove(&c.cid));
                prop_assert!(reaped_cids.insert(c.cid));
            }
            while dev.outstanding(0) < cap {
                let Some(cmd) = parked.pop() else { break };
                submit(&mut dev, &mut in_flight, &mut accepted, cmd);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain must terminate");
        }
        prop_assert!(in_flight.is_empty(), "every SQE produced exactly one CQE");
        prop_assert_eq!(reaped_cids.len() as u64, accepted, "CQE count equals accepted SQEs");
        prop_assert_eq!(reaped_cids.len() as u64, next_cid, "a full SQ parked rather than dropped");
        let stats = dev.stats();
        prop_assert_eq!(stats.cqes, accepted);
        prop_assert_eq!(stats.reads + stats.writes + stats.flushes, accepted);
    }
}

// --- Fabric transport: capsule invariants under reordering/delay ---------------

#[derive(Debug, Clone)]
enum FabricAction {
    Submit { slba: u8, class: u8 },
    Doorbell,
    AdvanceAndReap { ns: u32 },
}

fn fabric_action_strategy() -> impl Strategy<Value = FabricAction> {
    prop_oneof![
        5 => ((0u8..64), (0u8..3)).prop_map(|(slba, class)| FabricAction::Submit { slba, class }),
        3 => Just(FabricAction::Doorbell),
        3 => (1u32..200_000).prop_map(|ns| FabricAction::AdvanceAndReap { ns }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn fabric_capsules_yield_exactly_one_cqe_per_sqe(
        actions in proptest::collection::vec(fabric_action_strategy(), 1..120),
        depth in 2usize..10,
        cap in 1usize..12,
        one_way in 100u64..40_000,
        jitter_num in 0u64..30_000,
    ) {
        use bpfstor::device::transport::{FabricConfig, FabricTransport, SubmitClass, Transport};
        use bpfstor::device::{NvmeCommand, NvmeOp, QueueError};
        use bpfstor::sim::{LatencyDist, SimRng};

        let jitter = jitter_num.min(one_way.saturating_sub(1));
        let mut profile = bpfstor::device::DeviceProfile::optane_gen2_p5800x();
        profile.queue_depth = depth;
        let dev = bpfstor::device::NvmeDevice::new(profile, 1, SimRng::seed(0xFAB));
        let cfg = FabricConfig {
            to_target: LatencyDist::Uniform(one_way - jitter, one_way + jitter),
            to_host: LatencyDist::Uniform(one_way - jitter, one_way + jitter),
            target_proc_ns: 250,
            inflight_cap: cap,
            ..FabricConfig::contention_defaults()
        };
        let mut t = FabricTransport::new(dev, cfg, SimRng::seed(0xCAB1E));
        // The effective window: the tighter of the credit cap and ring.
        let window = t.queue_capacity();
        prop_assert_eq!(window, cap.min(depth - 1));

        let mut now: u64 = 0;
        let mut next_cid: u64 = 0;
        let mut in_flight = std::collections::HashSet::new();
        let mut reaped_cids = std::collections::HashSet::new();
        let mut parked: Vec<(NvmeCommand, SubmitClass)> = Vec::new();
        let mut accepted: u64 = 0;
        let mut host_class: u64 = 0;

        let class_of = |c: u8| match c {
            0 => SubmitClass::Host,
            1 => SubmitClass::PushdownStart,
            _ => SubmitClass::TargetLocal,
        };

        for action in &actions {
            match action {
                FabricAction::Submit { slba, class } => {
                    let cmd = NvmeCommand {
                        cid: next_cid,
                        op: NvmeOp::Read { slba: *slba as u64, nlb: 1 },
                    };
                    let cid = next_cid;
                    next_cid += 1;
                    let cls = class_of(*class);
                    if t.can_accept(0, 1, 0, cls) {
                        let before = t.outstanding(0);
                        prop_assert!(before < window);
                        t.submit(0, cmd, cls, 0).expect("can_accept said yes");
                        prop_assert!(in_flight.insert(cid), "no double tag");
                        if cls == SubmitClass::Host {
                            host_class += 1;
                        }
                        accepted += 1;
                    } else {
                        prop_assert_eq!(t.outstanding(0), window, "reject only at the window");
                        prop_assert_eq!(
                            t.submit(0, cmd.clone(), cls, 0).unwrap_err(),
                            QueueError::SubmissionFull
                        );
                        parked.push((cmd, cls));
                    }
                }
                FabricAction::Doorbell => {
                    t.ring_doorbell(now, 0).expect("qp 0");
                }
                FabricAction::AdvanceAndReap { ns } => {
                    now += *ns as u64;
                    t.post_ready(now, 0);
                    let cqes = t.reap(now, 0, usize::MAX);
                    prop_assert!(
                        cqes.windows(2).all(|w| w[0].complete_at <= w[1].complete_at),
                        "host sees completions in host-time order"
                    );
                    for c in cqes {
                        prop_assert!(c.complete_at <= now, "nothing from the future");
                        prop_assert!(in_flight.remove(&c.cid), "one CQE per SQE");
                        prop_assert!(reaped_cids.insert(c.cid), "no duplicate CQE");
                    }
                    // Freed credits readmit parked capsules, oldest first.
                    while t.can_accept(0, 1, 0, SubmitClass::Host) {
                        let Some((cmd, cls)) = parked.pop() else { break };
                        let cid = cmd.cid;
                        t.submit(0, cmd, cls, 0).expect("credit freed");
                        prop_assert!(in_flight.insert(cid));
                        if cls == SubmitClass::Host {
                            host_class += 1;
                        }
                        accepted += 1;
                    }
                }
            }
            prop_assert!(
                t.outstanding(0) <= window,
                "in-flight capsules never exceed the configured cap"
            );
            prop_assert!(
                t.fabric_stats().max_inflight <= window,
                "high-water mark respects the window"
            );
        }

        // Drain: every accepted capsule (including re-admitted parked
        // ones) must produce exactly one host CQE.
        let mut guard = 0;
        while t.outstanding(0) > 0 || !parked.is_empty() {
            t.ring_doorbell(now, 0).expect("qp 0");
            now += 1_000_000;
            t.post_ready(now, 0);
            for c in t.reap(now, 0, usize::MAX) {
                prop_assert!(in_flight.remove(&c.cid));
                prop_assert!(reaped_cids.insert(c.cid));
            }
            while t.can_accept(0, 1, 0, SubmitClass::Host) {
                let Some((cmd, cls)) = parked.pop() else { break };
                let cid = cmd.cid;
                t.submit(0, cmd, cls, 0).expect("credit freed");
                prop_assert!(in_flight.insert(cid));
                if cls == SubmitClass::Host {
                    host_class += 1;
                }
                accepted += 1;
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain must terminate");
        }
        prop_assert!(in_flight.is_empty());
        prop_assert_eq!(reaped_cids.len() as u64, accepted, "one CQE per accepted SQE");
        prop_assert_eq!(reaped_cids.len() as u64, next_cid, "full SQ parked, not dropped");
        let s = t.fabric_stats();
        prop_assert_eq!(s.capsules_sent + s.target_local, accepted, "every capsule classified");
        prop_assert_eq!(s.responses, host_class, "one response capsule per host-class command");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// A lossy, jittery, congested multi-initiator wire still delivers
    /// every submitted command to exactly one completion: losses pay a
    /// retransmission timeout (never drop the command), duplicate
    /// deliveries are suppressed by the target's command-id dedup, and
    /// reordering from jitter never double-completes or loses a tag.
    #[test]
    fn lossy_fabric_delivers_every_command_exactly_once(
        actions in proptest::collection::vec(fabric_action_strategy(), 1..120),
        depth in 3usize..10,
        initiators in 1usize..5,
        one_way in 100u64..40_000,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.5,
        timeout in 1u64..200_000,
        rng_seed in 0u64..1_000,
    ) {
        use bpfstor::device::transport::{FabricConfig, FabricTransport, SubmitClass, Transport};
        use bpfstor::device::{NvmeCommand, NvmeOp};
        use bpfstor::sim::{LatencyDist, SimRng};

        // Derived knobs keep the parameter tuple within proptest's
        // arity limit without shrinking the explored space much.
        let jitter = (one_way / 3).min(one_way.saturating_sub(1));
        let admit_ns = (rng_seed % 4) * 500;
        let mut profile = bpfstor::device::DeviceProfile::optane_gen2_p5800x();
        profile.queue_depth = depth;
        let dev = bpfstor::device::NvmeDevice::new(profile, 1, SimRng::seed(0xFAB ^ rng_seed));
        let cfg = FabricConfig {
            to_target: LatencyDist::Uniform(one_way - jitter, one_way + jitter),
            to_host: LatencyDist::Uniform(one_way - jitter, one_way + jitter),
            target_proc_ns: 250,
            initiators,
            admit_ns,
            congestion_knee: 2,
            congestion_ns_per_capsule: 500,
            loss_prob: loss,
            retransmit_timeout_ns: timeout,
            dup_prob: dup,
            ..FabricConfig::contention_defaults()
        };
        let mut t = FabricTransport::new(dev, cfg, SimRng::seed(0xCAB1E ^ rng_seed));
        let window = t.queue_capacity();

        let class_of = |c: u8| match c {
            0 => SubmitClass::Host,
            1 => SubmitClass::PushdownStart,
            _ => SubmitClass::TargetLocal,
        };

        let mut now: u64 = 0;
        let mut next_cid: u64 = 0;
        let mut in_flight = std::collections::HashSet::new();
        let mut reaped_cids = std::collections::HashSet::new();
        let mut accepted: u64 = 0;
        let mut host_class: u64 = 0;

        for action in &actions {
            match action {
                FabricAction::Submit { slba, class } => {
                    let cmd = NvmeCommand {
                        cid: next_cid,
                        op: NvmeOp::Read { slba: *slba as u64, nlb: 1 },
                    };
                    let cid = next_cid;
                    next_cid += 1;
                    let cls = class_of(*class);
                    let init = (cid % initiators as u64) as u32;
                    // A full window parks driver-side; drop here (the
                    // parking path is covered by the window proptest).
                    if t.can_accept(0, 1, init, cls) {
                        t.submit(0, cmd, cls, init).expect("can_accept said yes");
                        prop_assert!(in_flight.insert(cid), "no double tag");
                        if cls == SubmitClass::Host {
                            host_class += 1;
                        }
                        accepted += 1;
                    }
                }
                FabricAction::Doorbell => {
                    t.ring_doorbell(now, 0).expect("qp 0");
                }
                FabricAction::AdvanceAndReap { ns } => {
                    now += *ns as u64;
                    t.post_ready(now, 0);
                    for c in t.reap(now, 0, usize::MAX) {
                        prop_assert!(c.complete_at <= now, "nothing from the future");
                        prop_assert!(in_flight.remove(&c.cid), "one CQE per SQE");
                        prop_assert!(reaped_cids.insert(c.cid), "no duplicate CQE");
                    }
                }
            }
            prop_assert!(t.outstanding(0) <= window, "window holds under loss");
        }

        // Drain: every accepted capsule must surface exactly once no
        // matter how many crossings were lost along the way.
        let mut guard = 0;
        while t.outstanding(0) > 0 {
            t.ring_doorbell(now, 0).expect("qp 0");
            now += 10_000_000;
            t.post_ready(now, 0);
            for c in t.reap(now, 0, usize::MAX) {
                prop_assert!(in_flight.remove(&c.cid));
                prop_assert!(reaped_cids.insert(c.cid));
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain must terminate");
        }
        prop_assert!(in_flight.is_empty(), "every accepted SQE completed");
        prop_assert_eq!(reaped_cids.len() as u64, accepted, "exactly one CQE each");
        let s = t.fabric_stats();
        prop_assert_eq!(s.responses, host_class, "one response per host-class command");
        prop_assert_eq!(s.lost, s.retransmits, "every loss is retransmitted, never dropped");
        prop_assert!(s.dups_suppressed <= s.retransmits, "dups only from retransmissions");
        if loss == 0.0 {
            prop_assert_eq!(s.retransmits, 0, "no loss, no retransmissions");
        }
        let per_init: u64 = t.initiator_stats().iter().map(|i| i.retransmits).sum();
        prop_assert_eq!(per_init, s.retransmits, "per-initiator retransmits sum to the total");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Crash recovery when the fsync flush barrier crosses the fabric:
    /// whether the barrier is submitted from the host (`User` dispatch,
    /// one capsule per flush) or runs target-side under write pushdown
    /// (`DriverHook`, the commit acknowledged by the terminal response
    /// capsule), a crash at every journal record boundary must land on
    /// the last durable commit point — never a torn transaction.
    #[test]
    fn fabric_crash_at_any_boundary_recovers_the_last_durable_commit(
        writers in 1usize..4,
        writes in 4u64..16,
        fsync_every in 1u64..3,
        max_wait_us in 5u64..60,
        seed in 0u64..1_000,
    ) {
        const NBLOCKS: u64 = 1 << 14;
        use bpfstor::kernel::{CommitPolicy, DispatchMode, FabricConfig, TransportConfig};
        let link = || {
            TransportConfig::Fabric(
                FabricConfig::symmetric(20_000, 4_000)
                    .with_initiators(2)
                    .with_initiator_window(4)
                    .with_admit_ns(500)
                    .with_loss(0.02, 50_000, 0.25),
            )
        };
        let policies = [
            CommitPolicy::PerFsync,
            CommitPolicy::Group { max_wait_us, max_handles: writers as u32 },
        ];
        for policy in policies {
            for mode in [DispatchMode::User, DispatchMode::DriverHook] {
                let (m, report) = run_crash_writers_on(
                    policy, writers, writes, fsync_every, true, seed, link(), mode,
                );
                let j = m.fs().journal();
                prop_assert_eq!(
                    j.len(), j.committed_records().len(),
                    "{:?}/{:?}: the trailing fsync commits everything logged",
                    policy, mode
                );
                // Pushdown moves the barrier to the target but may not
                // change what commits: under group commit a shared
                // barrier still acks every joined fsync.
                let commit = report.commit;
                if policy == CommitPolicy::PerFsync {
                    prop_assert_eq!(commit.commits, commit.fsyncs, "{:?}/{:?}", policy, mode);
                }
                if mode == DispatchMode::DriverHook {
                    prop_assert!(
                        report.fabric.target_local > 0,
                        "pushdown runs the barrier target-side"
                    );
                }
                let total = j.len();
                let commit_points: Vec<usize> = j.commit_points().to_vec();
                let live = fs_meta(m.fs());
                let at = |k: usize| fs_meta(&m.fs().clone().crash_and_recover_at(NBLOCKS, k));
                prop_assert_eq!(
                    at(total), live.clone(),
                    "{:?}/{:?}: full-log replay reproduces the live metadata", policy, mode
                );
                let mut prefix = at(0);
                let mut next_cp = 0usize;
                for k in 0..=total {
                    if commit_points.get(next_cp) == Some(&k) {
                        next_cp += 1;
                        prefix = at(k);
                    }
                    prop_assert_eq!(
                        at(k), prefix.clone(),
                        "{:?}/{:?}: crash after {} of {} records must recover the last \
                         durable commit", policy, mode, k, total
                    );
                }
            }
        }
    }
}

// --- Completion reaping: exactly-once delivery across mode switches ------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Under a random read/update/insert mix (with fsync barriers) on
    /// the uring path, a hybrid reaper with arbitrary — including
    /// degenerate, flap-happy — watermarks still delivers exactly one
    /// CQE per SQE: every chain completes, nothing errors, and every
    /// command the device serviced is reaped exactly once no matter
    /// how often the queue pair bounces between polling and
    /// interrupts.
    #[test]
    fn hybrid_mode_switches_never_lose_or_duplicate_completions(
        (high, gap, window, dwell) in (1usize..6, 0usize..3, 1usize..12, 0u32..6),
        (interval, batch_pick) in (50u64..2_000, 0usize..4),
        (read_pct, update_split) in (10u8..=100, 0u8..=100),
        seed in any::<u64>(),
    ) {
        use bpfstor::core::{
            AdaptiveIrqConfig, DispatchMode, HybridConfig, PollConfig, PushdownSession,
            ReapMode, YcsbMix,
        };
        use bpfstor::sim::SECOND;
        use bpfstor::workload::OpMix;

        let batch = [1u32, 3, 8, 32][batch_pick];
        let entries: Vec<(u64, Vec<u8>)> = (0..400u64)
            .map(|i| {
                let mut v = vec![0u8; 48];
                v[..8].copy_from_slice(&(i * 31).to_le_bytes());
                (i * 3, v)
            })
            .collect();
        let cfg = HybridConfig {
            poll: PollConfig { interval_ns: interval },
            irq: AdaptiveIrqConfig::default(),
            // low < high always; gap 0 makes the scheduler maximally
            // twitchy, which is exactly what the property stresses.
            high_watermark: high,
            low_watermark: high - 1 - gap.min(high - 1),
            window,
            dwell,
        };
        let update = ((100 - read_pct) as u16 * update_split as u16 / 100) as u8;
        let mix = OpMix {
            read: read_pct,
            update,
            insert: 100 - read_pct - update,
            scan: 0,
        };
        let chains = 150u64;
        let mut s = PushdownSession::builder(
            YcsbMix::new(entries, mix, seed).max_chains(chains),
        )
        .dispatch(DispatchMode::DriverHook)
        .reap_mode(ReapMode::Hybrid(cfg))
        .seed(seed)
        .build()
        .expect("session");
        let (report, stats) = s.run_uring(1, batch, SECOND);

        prop_assert_eq!(stats.completed, chains, "every chain completes");
        prop_assert_eq!(stats.errors, 0);
        prop_assert_eq!(stats.mismatches, 0);
        let serviced = report.device.reads + report.device.writes + report.device.flushes;
        prop_assert_eq!(
            report.device.cqes, serviced,
            "exactly one CQE reaped per serviced command"
        );
        // The two delivery mechanisms account for all their work and
        // nothing else's.
        prop_assert_eq!(report.trace.polls, report.reaper.polls);
        prop_assert_eq!(report.trace.irqs, report.reaper.irqs);
        prop_assert_eq!(
            report.reaper.mode_transitions as usize >= report.reaper.transitions.len(),
            true,
            "the timeline never exceeds the count"
        );
    }
}

// --- Multi-tenancy: weighted fair reaping is exactly-once ----------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Weighted fair reaping is a service *order*, never a service
    /// *filter*: under a random tenant mix (B-tree readers interleaved
    /// with fsyncing YCSB writers), arbitrary weights, arbitrary SQ
    /// slot budgets, and a reap mode that may flap between polling and
    /// interrupts, the drained run reaps exactly one CQE per command
    /// each tenant submitted — the deficit-round-robin permutation
    /// neither drops, duplicates, nor cross-charges a completion.
    #[test]
    fn fair_reaping_reaps_every_tenant_command_exactly_once(
        tenants in proptest::collection::vec(
            // (reap weight, SQ budget selector, threads)
            (1u64..16, 0usize..4, 1usize..4),
            1..4
        ),
        cores in 1usize..3,
        hybrid in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use bpfstor::core::{
            Btree, DispatchMode, ReapMode, TenantGroup, TenantLimits, YcsbMix,
        };
        use bpfstor::kernel::MachineConfig;
        use bpfstor::sim::MILLISECOND;
        use bpfstor::workload::OpMix;

        let reap = if hybrid {
            ReapMode::Hybrid(Default::default())
        } else {
            ReapMode::Interrupt
        };
        let mut group = TenantGroup::builder()
            .machine_config(MachineConfig {
                cores,
                seed,
                // Batch completions so the fair scheduler has real
                // multi-tenant reap windows to permute.
                irq_coalesce_us: 5,
                irq_coalesce_depth: 4,
                ..MachineConfig::default()
            })
            .dispatch(DispatchMode::DriverHook)
            .reap_mode(reap)
            .fair_reap(true)
            .build();
        let entries: Vec<(u64, Vec<u8>)> = (0..64u64)
            .map(|i| {
                let mut v = vec![0u8; 48];
                v[..8].copy_from_slice(&(i * 31).to_le_bytes());
                (i * 3, v)
            })
            .collect();
        let mut threads = Vec::new();
        for (i, &(weight, slots, nthreads)) in tenants.iter().enumerate() {
            let limits = TenantLimits {
                sq_slots: if slots == 0 { None } else { Some(slots + 1) },
                ..TenantLimits::weighted(weight)
            };
            let id = if i % 2 == 0 {
                group.add_tenant(Btree::depth(3), limits)
            } else {
                let mix = OpMix { read: 30, update: 50, insert: 20, scan: 0 };
                group.add_tenant(
                    YcsbMix::new(entries.clone(), mix, seed ^ i as u64).fsync_every(2),
                    limits,
                )
            };
            id.expect("tenant attaches");
            threads.push(nthreads);
        }
        let report = group.run_closed_loop(&threads, 2 * MILLISECOND);

        // The run drains before reporting, so "reaped exactly once"
        // must hold with equality, per tenant and in total.
        for b in &report.tenants {
            prop_assert_eq!(
                b.cqes, b.ios,
                "tenant {}: every submitted command reaps exactly one CQE",
                b.tenant
            );
            prop_assert!(b.chains >= 1, "tenant {} must make progress", b.tenant);
        }
        let total: u64 = report.tenants.iter().map(|b| b.cqes).sum();
        prop_assert_eq!(total, report.ios, "no completion lost or double-reaped");
        let serviced = report.device.reads + report.device.writes + report.device.flushes;
        prop_assert_eq!(report.device.cqes, serviced, "device-side exactly-once");
    }
}
